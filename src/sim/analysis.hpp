// Access-pattern analysis: how many accesses a cache line receives during
// one residency (fill -> eviction). This is the quantity that gates the
// paper's predictor: a line must accumulate W accesses before Algorithm 1
// can fire even once, so the distribution of accesses-per-residency
// explains where the window predictor acts and where the fill-time
// encoding choice has to carry the saving alone.
#pragma once

#include "cache/cache_config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"

namespace cnt {

struct ResidencyStats {
  u64 residencies = 0;        ///< completed + still-resident line tenures
  u64 accesses = 0;           ///< total cache accesses observed
  Accumulator per_residency;  ///< accesses per tenure (mean/min/max/sd)
  /// Fraction of *accesses* landing on tenures that reach at least the
  /// given window length -- i.e., the share of traffic the window
  /// predictor can ever influence.
  double traffic_in_long_tenures = 0;
  /// Fraction of tenures reaching at least the window length.
  double long_tenure_fraction = 0;

  u64 window = 15;  ///< the W this analysis was computed against
};

/// Replay `w` through a cache of geometry `cfg` and measure residency
/// lengths against window `W`. Functional-only (no energy policies).
[[nodiscard]] ResidencyStats analyze_residency(const Workload& w,
                                               const CacheConfig& cfg,
                                               usize window = 15);

}  // namespace cnt
