#include "sim/report.hpp"

#include <cstdlib>
#include <filesystem>

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace cnt {

std::string savings_table(const std::vector<SimResult>& results) {
  Table t({"workload", "hit%", "wr%", "CMOS", "CNFET base", "static",
           "CNT-Cache", "ideal", "saving"});
  Accumulator saving_acc;
  for (const auto& r : results) {
    const double saving = r.saving(kPolicyCnt);
    saving_acc.add(saving);
    auto cell = [&r](std::string_view name) {
      const auto* p = r.find(name);
      return p == nullptr ? std::string("-") : p->total().to_string();
    };
    t.add_row({r.workload, Table::pct(r.cache_stats.hit_rate()),
               Table::pct(r.trace_stats.write_fraction), cell(kPolicyCmos),
               cell(kPolicyBaseline), cell(kPolicyStatic), cell(kPolicyCnt),
               cell(kPolicyIdeal), Table::pct(saving)});
  }
  t.add_row({"mean", "", "", "", "", "", "", "", Table::pct(saving_acc.mean())});
  return t.render();
}

double mean_saving(const std::vector<SimResult>& results,
                   std::string_view opt, std::string_view base) {
  Accumulator acc;
  for (const auto& r : results) acc.add(r.saving(opt, base));
  return acc.mean();
}

std::string breakdown_table(const SimResult& result) {
  std::vector<std::string> headers{"category"};
  for (const auto& p : result.policies) headers.push_back(p.name);
  Table t(std::move(headers));

  for (usize c = 0; c < static_cast<usize>(EnergyCategory::kCount); ++c) {
    const auto cat = static_cast<EnergyCategory>(c);
    std::vector<std::string> row{std::string(to_string(cat))};
    bool any = false;
    for (const auto& p : result.policies) {
      const Energy e = p.ledger.get(cat);
      if (e.in_joules() != 0.0) any = true;
      row.push_back(e.to_string());
    }
    if (any) t.add_row(std::move(row));
  }

  std::vector<std::string> total_row{"TOTAL"};
  for (const auto& p : result.policies) {
    total_row.push_back(p.total().to_string());
  }
  t.add_row(std::move(total_row));
  return t.render();
}

std::string fault_table(const std::vector<SimResult>& results) {
  Table t({"workload", "stuck", "flips", "corrected", "detected", "SDC bits",
           "dir flips", "dir SDC", "saving"});
  for (const auto& r : results) {
    if (!r.has_fault) continue;
    const FaultStats& fs = r.fault_stats;
    t.add_row({r.workload,
               std::to_string(fs.stuck_data_cells + fs.stuck_dir_cells),
               std::to_string(fs.transient_data_flips +
                              fs.transient_dir_flips),
               std::to_string(fs.corrected_bits + fs.dir_corrected_bits),
               std::to_string(fs.detected_events + fs.dir_detected_events),
               std::to_string(fs.silent_bits),
               std::to_string(fs.dir_flips),
               std::to_string(fs.dir_silent_bits),
               Table::pct(r.saving(kPolicyCnt))});
  }
  return t.render();
}

void write_savings_csv(const std::vector<SimResult>& results,
                       const std::string& path) {
  CsvWriter csv(path,
                {"workload", "hit_rate", "write_fraction", "cmos_j",
                 "cnfet_base_j", "static_j", "cnt_j", "ideal_j", "saving"});
  for (const auto& r : results) {
    auto joules = [&r](std::string_view name) {
      const auto* p = r.find(name);
      return p == nullptr ? std::string()
                          : std::to_string(p->total().in_joules());
    };
    csv.add_row({r.workload, std::to_string(r.cache_stats.hit_rate()),
                 std::to_string(r.trace_stats.write_fraction),
                 joules(kPolicyCmos), joules(kPolicyBaseline),
                 joules(kPolicyStatic), joules(kPolicyCnt),
                 joules(kPolicyIdeal), std::to_string(r.saving(kPolicyCnt))});
  }
  csv.finish();
}

std::string results_dir() {
  const char* env = std::getenv("CNT_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "results";
  std::filesystem::create_directories(dir);
  return dir;
}

std::string result_path(const std::string& name) {
  return results_dir() + "/" + name;
}

}  // namespace cnt
