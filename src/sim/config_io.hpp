// Build a SimConfig from an INI-style Config (see common/config.hpp), so
// experiments are scriptable without recompiling:
//
//   [cache]
//   size = 32k          ; accepts k/m/g suffixes
//   ways = 4
//   line = 64
//   addr_bits = 40
//   replacement = lru   ; lru | plru | fifo | random
//   write_policy = wb   ; wb | wt
//   alloc = wa          ; wa | nwa
//   idle_per_miss = 8
//   hit_idle_period = 4
//
//   [cnt]
//   window = 15
//   partitions = 8
//   fifo_depth = 8
//   delta_t = 0.0
//   fill = by-miss-type ; as-is | min-write | read-optimized | by-miss-type
//   granularity = word  ; word | line
//   history = per-line  ; per-line | per-set
//   account_metadata = true
//   flip_aware = false
//
//   [policies]
//   cmos = true
//   static = true
//   ideal = true
//
// Unknown enum values throw std::invalid_argument naming the key.
#pragma once

#include "common/config.hpp"
#include "sim/runner.hpp"

namespace cnt {

/// Apply every recognized key of `cfg` on top of the defaults.
[[nodiscard]] SimConfig sim_config_from(const Config& cfg);

/// Keys this reader understands (for unknown-key warnings in CLIs).
[[nodiscard]] std::vector<std::string> known_sim_config_keys();

}  // namespace cnt
