// Experiment runner: replay one workload through a functional cache with
// the full set of energy policies attached, and collect per-policy ledgers.
//
// Because the policies are pure observers, a single functional run yields
// exactly comparable energy numbers for every policy (same hits, same
// evictions, same data) -- the experimental-control property the paper's
// comparison needs.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/cache_stats.hpp"
#include "cnt/cnt_policy.hpp"
#include "energy/energy_ledger.hpp"
#include "energy/tech_params.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_config.hpp"
#include "trace/stream/trace_source.hpp"
#include "trace/trace.hpp"

namespace cnt {

/// Canonical policy names used in every report.
inline constexpr std::string_view kPolicyCmos = "cmos";
inline constexpr std::string_view kPolicyBaseline = "cnfet_base";
inline constexpr std::string_view kPolicyStatic = "static_inv";
inline constexpr std::string_view kPolicyCnt = "cnt_cache";
inline constexpr std::string_view kPolicyIdeal = "ideal";

struct SimConfig {
  CacheConfig cache;            ///< the cache under study (default 32K/4w L1D)
  TechParams tech;              ///< CNFET parameters for all CNFET policies
  TechParams cmos_tech;         ///< CMOS parameters for the CMOS reference
  CntConfig cnt;                ///< CNT-Cache configuration
  /// Fault-injection campaign (default: disabled, zero cost, byte-identical
  /// results to a fault-free build). Baseline-family arrays protect the
  /// data line; the CNT array's codeword also covers its direction bits
  /// when fault.protect_directions is set.
  FaultConfig fault;
  bool with_cmos = true;
  bool with_static = true;
  bool with_ideal = true;

  SimConfig();
};

struct PolicyResult {
  std::string name;
  EnergyLedger ledger;
  bool has_cnt_stats = false;
  CntPolicyStats cnt_stats;
  UpdateQueueStats queue_stats;

  [[nodiscard]] Energy total() const noexcept { return ledger.total(); }
};

struct SimResult {
  std::string workload;
  TraceStats trace_stats;
  CacheStats cache_stats;
  std::vector<PolicyResult> policies;
  bool has_fault = false;   ///< a fault campaign ran for this workload
  FaultStats fault_stats;   ///< campaign tallies (valid when has_fault)

  [[nodiscard]] const PolicyResult* find(std::string_view name) const;
  /// Energy of a policy; throws std::out_of_range if absent.
  [[nodiscard]] Energy energy(std::string_view name) const;
  /// Fractional dynamic-energy saving of `opt` relative to `base`
  /// (0.222 = 22.2% lower).
  [[nodiscard]] double saving(std::string_view opt,
                              std::string_view base = kPolicyBaseline) const;
};

/// Core entry: replay accesses pulled from any TraceSource -- an in-RAM
/// Trace or a chunked on-disk file -- through one cache configuration
/// with all selected policies attached. `init` segments are loaded into
/// memory before replay. The source is rewound first, and accesses are
/// pulled in batches, so a streamed multi-GB trace replays with O(chunk)
/// resident memory and produces a ledger byte-identical to the same
/// accesses replayed from RAM.
[[nodiscard]] SimResult simulate(TraceSource& source,
                                 std::span<const MemorySegment> init,
                                 const SimConfig& cfg);

/// Run one materialized workload (wraps its trace in a VectorTraceSource).
[[nodiscard]] SimResult simulate(const Workload& w, const SimConfig& cfg);

/// Run the whole default suite. `scale` shrinks the workloads for quick
/// runs (1.0 = full size); `seed_offset` perturbs the generators for
/// statistical replication (0 = canonical instances).
[[nodiscard]] std::vector<SimResult> run_suite(const SimConfig& cfg,
                                               double scale = 1.0,
                                               u64 seed_offset = 0);

}  // namespace cnt
