#include "sim/stats_dump.hpp"

#include "common/io.hpp"
#include "common/json.hpp"

namespace cnt {

namespace {

void dump_result(JsonWriter& j, const SimResult& r) {
  j.begin_object();
  j.kv("workload", r.workload);

  j.key("trace");
  j.begin_object();
  j.kv("accesses", r.trace_stats.accesses);
  j.kv("reads", r.trace_stats.reads);
  j.kv("writes", r.trace_stats.writes);
  j.kv("ifetches", r.trace_stats.ifetches);
  j.kv("unique_lines", r.trace_stats.unique_lines);
  j.kv("write_fraction", r.trace_stats.write_fraction);
  j.kv("footprint_kib", r.trace_stats.footprint_kib);
  j.kv("write_bit1_density", r.trace_stats.write_bit1_density);
  j.end_object();

  j.key("cache");
  j.begin_object();
  j.kv("accesses", r.cache_stats.accesses);
  j.kv("read_hits", r.cache_stats.read_hits);
  j.kv("read_misses", r.cache_stats.read_misses);
  j.kv("write_hits", r.cache_stats.write_hits);
  j.kv("write_misses", r.cache_stats.write_misses);
  j.kv("evictions", r.cache_stats.evictions);
  j.kv("writebacks", r.cache_stats.writebacks);
  j.kv("hit_rate", r.cache_stats.hit_rate());
  j.end_object();

  j.key("policies");
  j.begin_array();
  for (const auto& p : r.policies) {
    j.begin_object();
    j.kv("name", p.name);
    j.kv("total_j", p.total().in_joules());

    j.key("categories");
    j.begin_object();
    for (usize c = 0; c < static_cast<usize>(EnergyCategory::kCount); ++c) {
      const auto cat = static_cast<EnergyCategory>(c);
      if (p.ledger.count(cat) == 0) continue;
      j.key(to_string(cat));
      j.begin_object();
      j.kv("joules", p.ledger.get(cat).in_joules());
      j.kv("charges", p.ledger.count(cat));
      j.end_object();
    }
    j.end_object();

    if (p.has_cnt_stats) {
      j.key("cnt");
      j.begin_object();
      j.kv("windows_evaluated", p.cnt_stats.windows_evaluated);
      j.kv("switch_decisions", p.cnt_stats.switch_decisions);
      j.kv("reencodes_applied", p.cnt_stats.reencodes_applied);
      j.kv("partition_flips_applied", p.cnt_stats.partition_flips_applied);
      j.kv("skipped_pending", p.cnt_stats.skipped_pending);
      j.kv("fill_inversions", p.cnt_stats.fill_inversions);
      j.kv("zero_fills", p.cnt_stats.zero_fills);
      j.kv("zero_reads", p.cnt_stats.zero_reads);
      j.kv("zero_materializations", p.cnt_stats.zero_materializations);
      j.kv("fifo_pushed", p.queue_stats.pushed);
      j.kv("fifo_dropped_full", p.queue_stats.dropped_full);
      j.kv("fifo_drained_stale", p.queue_stats.drained_stale);
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();

  j.key("savings");
  j.begin_object();
  for (const auto& p : r.policies) {
    if (p.name == kPolicyBaseline) continue;
    j.kv(p.name, r.saving(p.name));
  }
  j.end_object();

  j.end_object();
}

}  // namespace

void dump_json(const SimResult& result, std::ostream& os) {
  JsonWriter j(os);
  dump_result(j, result);
  os << '\n';
}

void dump_json(const std::vector<SimResult>& results, std::ostream& os) {
  JsonWriter j(os);
  j.begin_object();
  j.kv("schema", "cnt-cache-results-v1");
  j.key("results");
  j.begin_array();
  for (const auto& r : results) dump_result(j, r);
  j.end_array();
  j.end_object();
  os << '\n';
}

void dump_json_file(const std::vector<SimResult>& results,
                    const std::string& path) {
  // Publish-atomic (docs/crash_consistency.md): a failed or killed run
  // never leaves a truncated results JSON behind, and write errors
  // throw instead of exiting 0.
  io::AtomicFileWriter out(path, "stats");
  dump_json(results, out.stream());
  out.commit();
}

}  // namespace cnt
