#include "sim/analysis.hpp"

#include <vector>

#include "cache/cache.hpp"
#include "cache/main_memory.hpp"

namespace cnt {

namespace {

/// Counts accesses per (set, way) tenure; a fill closes the previous
/// tenure of the way it replaces.
class ResidencyProbe final : public AccessSink {
 public:
  ResidencyProbe(const CacheConfig& cfg, usize window)
      : ways_(cfg.ways), counts_(cfg.sets() * cfg.ways, 0),
        valid_(cfg.sets() * cfg.ways, false), window_(window) {}

  void on_access(const AccessEvent& ev) override {
    ++stats_.accesses;
    if (ev.kind == AccessKind::kWriteAround) return;
    const usize idx = static_cast<usize>(ev.set) * ways_ + ev.way;
    if (ev.is_fill()) {
      if (valid_[idx]) close_tenure(counts_[idx]);
      valid_[idx] = true;
      counts_[idx] = 1;  // the demand access that caused the fill
    } else {
      ++counts_[idx];
    }
  }

  [[nodiscard]] ResidencyStats finish() {
    for (usize i = 0; i < counts_.size(); ++i) {
      if (valid_[i]) close_tenure(counts_[i]);
    }
    stats_.long_tenure_fraction =
        stats_.residencies == 0
            ? 0.0
            : static_cast<double>(long_tenures_) /
                  static_cast<double>(stats_.residencies);
    const u64 counted = stats_.accesses;
    stats_.traffic_in_long_tenures =
        counted == 0 ? 0.0
                     : static_cast<double>(long_tenure_accesses_) /
                           static_cast<double>(counted);
    stats_.window = window_;
    return stats_;
  }

 private:
  void close_tenure(u64 count) {
    ++stats_.residencies;
    stats_.per_residency.add(static_cast<double>(count));
    if (count >= window_) {
      ++long_tenures_;
      long_tenure_accesses_ += count;
    }
  }

  usize ways_;
  std::vector<u64> counts_;
  std::vector<bool> valid_;
  usize window_;
  u64 long_tenures_ = 0;
  u64 long_tenure_accesses_ = 0;
  ResidencyStats stats_;
};

}  // namespace

ResidencyStats analyze_residency(const Workload& w, const CacheConfig& cfg,
                                 usize window) {
  MainMemory memory;
  memory.load(w.init);
  Cache cache(cfg, memory);
  ResidencyProbe probe(cfg, window);
  cache.add_sink(probe);
  for (const auto& a : w.trace) {
    MemAccess routed = a;
    if (routed.op == MemOp::kIFetch) routed.op = MemOp::kRead;
    cache.access(routed);
  }
  return probe.finish();
}

}  // namespace cnt
