#include "sim/metrics.hpp"

namespace cnt {

u64 TimingParams::cycles(const CacheStats& stats) const noexcept {
  return stats.accesses * hit_cycles + stats.misses() * miss_penalty;
}

double TimingParams::seconds(const CacheStats& stats) const noexcept {
  return static_cast<double>(cycles(stats)) / (clock_ghz * 1e9);
}

double edp(Energy energy, double seconds) noexcept {
  return energy.in_joules() * seconds;
}

Energy leakage_energy(double leakage_watts, double seconds) noexcept {
  return Energy::joules(leakage_watts * seconds);
}

Energy DramParams::traffic_energy(const MainMemory& mem) const noexcept {
  return static_cast<double>(mem.line_reads()) * per_line_read +
         static_cast<double>(mem.line_writes()) * per_line_write +
         static_cast<double>(mem.word_writes()) * per_word_write;
}

}  // namespace cnt
