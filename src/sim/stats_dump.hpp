// Machine-readable experiment output: serialize SimResults as JSON so
// external tooling (plotters, CI regressions, notebooks) can consume runs
// without scraping tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace cnt {

/// One result as a JSON object: workload + trace stats + cache stats +
/// per-policy ledgers (per-category joules and charge counts) + CNT
/// predictor/queue statistics where present.
void dump_json(const SimResult& result, std::ostream& os);

/// Many results as {"results": [...]} with a schema version.
void dump_json(const std::vector<SimResult>& results, std::ostream& os);

/// Convenience: atomically publish to a file through io::AtomicFileWriter
/// (failpoint sites stats.write / stats.sync / stats.rename); throws
/// cnt::Error (Errc::kIo) on I/O failure, leaving any previous file
/// untouched.
void dump_json_file(const std::vector<SimResult>& results,
                    const std::string& path);

}  // namespace cnt
