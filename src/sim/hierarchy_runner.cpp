#include "sim/hierarchy_runner.hpp"

#include <span>
#include <stdexcept>

#include "cnt/baseline_policies.hpp"
#include "common/cancel.hpp"

namespace cnt {

namespace {

// Inner replay loop; Hierarchy::access routes IFetch to L1I internally.
// The caller owns the batch buffer, so this stays allocation-free.
// cnt-hot
void replay_batch(Hierarchy& h, std::span<const MemAccess> batch) {
  for (const MemAccess& a : batch) h.access(a);
}

}  // namespace

Trace interleave(const Trace& code, const Trace& data, usize code_per_data) {
  Trace out("interleaved:" + code.name() + "+" + data.name());
  out.reserve(code.size() + data.size());
  usize ci = 0, di = 0;
  while (ci < code.size() || di < data.size()) {
    for (usize k = 0; k < code_per_data && ci < code.size(); ++k) {
      out.push(code[ci++]);
    }
    if (di < data.size()) out.push(data[di++]);
    if (ci >= code.size()) {
      while (di < data.size()) out.push(data[di++]);
    }
  }
  return out;
}

Energy HierarchyRunResult::cache_total() const {
  Energy total{};
  for (const auto& l : levels) total += l.ledger.total();
  return total;
}

const LevelResult& HierarchyRunResult::level(std::string_view name) const {
  for (const auto& l : levels) {
    if (l.level == name) return l;
  }
  throw std::out_of_range("HierarchyRunResult: no level named " +
                          std::string(name));
}

HierarchyRunResult run_hierarchy(const HierarchyRunConfig& cfg,
                                 TraceSource& source,
                                 std::span<const MemorySegment> init) {
  MainMemory memory;
  memory.load(init);
  Hierarchy h(cfg.hierarchy, memory);

  std::vector<std::unique_ptr<EnergyPolicyBase>> policies;
  auto attach = [&](Cache& cache, bool adaptive,
                    const CntConfig& cnt_cfg) -> EnergyPolicyBase* {
    const ArrayGeometry geom = geometry_of(cache.config());
    std::unique_ptr<EnergyPolicyBase> p;
    if (adaptive) {
      p = std::make_unique<CntPolicy>("cnt", cfg.tech, geom, cnt_cfg);
    } else {
      p = std::make_unique<PlainPolicy>("base", cfg.tech, geom);
    }
    cache.add_sink(*p);
    policies.push_back(std::move(p));
    return policies.back().get();
  };

  auto* pi = attach(h.l1i(), cfg.cnt_at_l1i, cfg.l1_cnt);
  auto* pd = attach(h.l1d(), cfg.cnt_at_l1d, cfg.l1_cnt);
  auto* p2 = attach(h.l2(), cfg.cnt_at_l2, cfg.l2_cnt);

  // Batched pull loop: O(batch + chunk) resident regardless of stream
  // length. Hierarchy::access routes IFetch to L1I internally.
  source.reset();
  std::vector<MemAccess> batch(4096);
  for (;;) {
    // Cooperative cancellation, once per batch (docs/robustness.md).
    cancel::throw_if_cancelled("sim.replay");
    const usize got = source.next(batch);
    if (got == 0) break;
    replay_batch(h, std::span<const MemAccess>(batch.data(), got));
  }

  HierarchyRunResult res;
  res.levels.push_back(
      {"L1I", cfg.cnt_at_l1i, pi->ledger(), h.l1i().stats()});
  res.levels.push_back(
      {"L1D", cfg.cnt_at_l1d, pd->ledger(), h.l1d().stats()});
  res.levels.push_back({"L2", cfg.cnt_at_l2, p2->ledger(), h.l2().stats()});
  res.dram_energy = cfg.dram.traffic_energy(memory);
  return res;
}

HierarchyRunResult run_hierarchy(const HierarchyRunConfig& cfg,
                                 const Workload& code, const Workload& data,
                                 usize code_per_data) {
  VectorTraceSource source(
      interleave(code.trace, data.trace, code_per_data));
  std::vector<MemorySegment> init = code.init;
  init.insert(init.end(), data.init.begin(), data.init.end());
  return run_hierarchy(cfg, source, init);
}

}  // namespace cnt
