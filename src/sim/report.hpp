// Report helpers shared by the benchmark harness binaries: savings tables,
// energy breakdowns, and CSV emission.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/runner.hpp"

namespace cnt {

/// Render the per-workload savings table (the headline experiment's rows):
/// one row per SimResult, columns for each policy's total energy and the
/// CNT-Cache saving vs. the CNFET baseline, plus an arithmetic-mean row.
[[nodiscard]] std::string savings_table(const std::vector<SimResult>& results);

/// Arithmetic mean of the CNT-vs-baseline saving across results (the
/// paper's "22.2% on average" metric).
[[nodiscard]] double mean_saving(const std::vector<SimResult>& results,
                                 std::string_view opt = kPolicyCnt,
                                 std::string_view base = kPolicyBaseline);

/// Render a per-category energy breakdown table for one result.
[[nodiscard]] std::string breakdown_table(const SimResult& result);

/// Render the fault-campaign summary table: one row per result with the
/// raw upset counts and their protection outcomes (corrected / detected /
/// silent, data and direction-bit domains) plus the residual CNT saving.
/// Results without a campaign (has_fault == false) are skipped.
[[nodiscard]] std::string fault_table(const std::vector<SimResult>& results);

/// Write the savings rows as CSV to `path`.
void write_savings_csv(const std::vector<SimResult>& results,
                       const std::string& path);

/// Standard directory for benchmark CSV output; created on demand.
/// Resolves to $CNT_RESULTS_DIR or "./results".
[[nodiscard]] std::string results_dir();

/// results_dir() + "/" + name, with the directory created.
[[nodiscard]] std::string result_path(const std::string& name);

}  // namespace cnt
