// Multi-level experiment runner: drive a split-L1 + unified-L2 hierarchy
// with an interleaved instruction + data stream and per-level energy
// policies (baseline or CNT-Cache per level).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cnt/cnt_policy.hpp"
#include "cnt/policy_base.hpp"
#include "sim/metrics.hpp"
#include "trace/stream/trace_source.hpp"
#include "trace/trace.hpp"

namespace cnt {

/// Interleave an instruction stream with a data stream, `code_per_data`
/// fetches between consecutive data accesses (a coarse dynamic mix). The
/// tail of the longer trace is appended unchanged.
[[nodiscard]] Trace interleave(const Trace& code, const Trace& data,
                               usize code_per_data = 2);

struct HierarchyRunConfig {
  HierarchyConfig hierarchy = HierarchyConfig::typical();
  TechParams tech = TechParams::cnfet();
  /// Enable the adaptive policy per level (false = plain baseline).
  bool cnt_at_l1i = true;
  bool cnt_at_l1d = true;
  bool cnt_at_l2 = false;
  CntConfig l1_cnt;  ///< CNT configuration for both L1s
  CntConfig l2_cnt;  ///< CNT configuration for the L2
  DramParams dram;
};

struct LevelResult {
  std::string level;
  bool adaptive = false;
  EnergyLedger ledger;
  CacheStats stats;
};

struct HierarchyRunResult {
  std::vector<LevelResult> levels;  ///< L1I, L1D, L2
  Energy dram_energy{};

  [[nodiscard]] Energy cache_total() const;
  [[nodiscard]] const LevelResult& level(std::string_view name) const;
};

/// Core entry: pull an already-interleaved access stream from any source
/// (in-RAM or chunked on-disk), load `init` segments, run, and collect
/// per-level ledgers. Streamed and in-RAM replay of the same accesses
/// produce byte-identical ledgers.
[[nodiscard]] HierarchyRunResult run_hierarchy(
    const HierarchyRunConfig& cfg, TraceSource& source,
    std::span<const MemorySegment> init);

/// Load both workloads' init images, interleave their traces, run, and
/// collect per-level ledgers.
[[nodiscard]] HierarchyRunResult run_hierarchy(const HierarchyRunConfig& cfg,
                                               const Workload& code,
                                               const Workload& data,
                                               usize code_per_data = 2);

}  // namespace cnt
