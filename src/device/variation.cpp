#include "device/variation.hpp"

#include <algorithm>
#include <cmath>

#include "device/cell_derivation.hpp"

namespace cnt {

namespace {

/// Floor on every multiplicative variation factor. A Gaussian draw at
/// high sigma can push `1 + sigma*g` to zero or below, which would hand
/// the cell derivation a non-physical (zero or negative) capacitance;
/// clamping the factor keeps every sampled capacitance -- and with it
/// every derived energy -- strictly positive.
constexpr double kMinScale = 0.01;

double positive_scale(double rel_sigma, Rng& rng) {
  return std::max(kMinScale, 1.0 + rel_sigma * rng.gaussian());
}

}  // namespace

CnfetDeviceParams sample_device(const CnfetDeviceParams& nominal,
                                const VariationParams& var, Rng& rng) {
  CnfetDeviceParams p = nominal;

  const double tubes = static_cast<double>(nominal.tubes_per_device) +
                       var.tube_count_sigma * rng.gaussian();
  p.tubes_per_device = static_cast<u32>(std::max(1.0, std::round(tubes)));

  const double d = nominal.diameter_nm *
                   (1.0 + var.diameter_rel_sigma * rng.gaussian());
  p.diameter_nm = std::clamp(d, 0.7, 3.0);

  p.cgate_per_tube_af =
      nominal.cgate_per_tube_af * positive_scale(var.cap_rel_sigma, rng);
  p.cparasitic_af =
      nominal.cparasitic_af * positive_scale(var.cap_rel_sigma, rng);
  return p;
}

BitEnergies sample_bit_energies(const CnfetDeviceParams& nominal,
                                const VariationParams& var, Rng& rng) {
  const CnfetDeviceParams dev = sample_device(nominal, var, rng);
  ArrayContext arr;
  arr.cbl_per_cell_af *= positive_scale(var.cap_rel_sigma, rng);
  return derive_bit_energies(dev, arr);
}

}  // namespace cnt
