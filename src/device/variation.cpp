#include "device/variation.hpp"

#include <algorithm>
#include <cmath>

#include "device/cell_derivation.hpp"

namespace cnt {

CnfetDeviceParams sample_device(const CnfetDeviceParams& nominal,
                                const VariationParams& var, Rng& rng) {
  CnfetDeviceParams p = nominal;

  const double tubes = static_cast<double>(nominal.tubes_per_device) +
                       var.tube_count_sigma * rng.gaussian();
  p.tubes_per_device = static_cast<u32>(std::max(1.0, std::round(tubes)));

  const double d = nominal.diameter_nm *
                   (1.0 + var.diameter_rel_sigma * rng.gaussian());
  p.diameter_nm = std::clamp(d, 0.7, 3.0);

  p.cgate_per_tube_af =
      nominal.cgate_per_tube_af * (1.0 + var.cap_rel_sigma * rng.gaussian());
  p.cparasitic_af =
      nominal.cparasitic_af * (1.0 + var.cap_rel_sigma * rng.gaussian());
  return p;
}

BitEnergies sample_bit_energies(const CnfetDeviceParams& nominal,
                                const VariationParams& var, Rng& rng) {
  const CnfetDeviceParams dev = sample_device(nominal, var, rng);
  ArrayContext arr;
  arr.cbl_per_cell_af *= 1.0 + var.cap_rel_sigma * rng.gaussian();
  return derive_bit_energies(dev, arr);
}

}  // namespace cnt
