#include "device/cell_derivation.hpp"

namespace cnt {

BitEnergies derive_bit_energies(const CnfetDeviceParams& dev,
                                const ArrayContext& arr) {
  const CnfetDevice d = evaluate(dev);

  // Bitline capacitance of one column.
  const double c_bl = static_cast<double>(arr.rows) * arr.cbl_per_cell_af *
                      1e-18;
  // Energy of a bitline excursion of dv from the precharge rail.
  const auto bl_energy = [&](double dv) { return c_bl * dev.vdd * dv; };

  BitEnergies e;
  // Read '0': the line discharges past the sense threshold (overshoot).
  e.rd0 = Energy::joules(bl_energy(arr.sense_swing_v * arr.read0_overshoot));
  // Read '1': only residual droop plus nothing from the cell.
  e.rd1 = Energy::joules(bl_energy(arr.sense_swing_v * arr.read1_residual));
  // Write '0': the strong n-type path flips the internal nodes; the
  // bitline barely moves. One cell transition's worth of charge.
  e.wr0 = Energy::joules(d.switch_energy);
  // Write '1': cell transition plus the contended bitline drive through
  // the weak p-type path (crowbar while the pull-down still conducts).
  e.wr1 = Energy::joules(d.switch_energy +
                         arr.write1_contention_factor *
                             bl_energy(arr.sense_swing_v));
  return e;
}

TechParams derive_tech_params(const CnfetDeviceParams& dev,
                              const ArrayContext& arr) {
  TechParams t = TechParams::cnfet();
  t.name = "CNFET-derived";
  t.cell = derive_bit_energies(dev, arr);

  // Peripheral logic scales with the device switching energy relative to
  // the nominal device the calibrated table assumes.
  const CnfetDevice nominal = evaluate(CnfetDeviceParams{});
  const CnfetDevice actual = evaluate(dev);
  const double energy_scale = actual.switch_energy / nominal.switch_energy;
  t.periph.decoder_per_addr_bit = t.periph.decoder_per_addr_bit * energy_scale;
  t.periph.wordline_per_cell = t.periph.wordline_per_cell * energy_scale;
  t.periph.tag_compare_per_bit = t.periph.tag_compare_per_bit * energy_scale;
  t.periph.output_per_bit = t.periph.output_per_bit * energy_scale;
  t.periph.encoder_per_bit = t.periph.encoder_per_bit * energy_scale;
  t.periph.predictor_update = t.periph.predictor_update * energy_scale;
  t.periph.predictor_eval_per_bit =
      t.periph.predictor_eval_per_bit * energy_scale;
  t.periph.fifo_per_byte = t.periph.fifo_per_byte * energy_scale;

  // Clock scales inversely with the device RC relative to nominal.
  const double rc_nominal = nominal.r_on_n * nominal.c_device;
  const double rc_actual = actual.r_on_n * actual.c_device;
  t.clock_ghz = t.clock_ghz * rc_nominal / rc_actual;
  return t;
}

}  // namespace cnt
