// First-order CNFET device model.
//
// The paper asserts per-bit SRAM energies (its Table `tab:rw-analysis`,
// lost); this module derives them one level down, from transistor-level
// CNFET parameters taken from the standard literature (Stanford VS-CNFET
// style characterization): carbon nanotubes per device, tube diameter
// (which sets the bandgap and on-current), supply voltage, and the
// parasitic capacitances of a 16 nm-class standard cell.
//
// The model is deliberately analytic and first-order -- drive currents,
// effective capacitances, and switching energies, no transient solver --
// because its role is to show that the *asymmetry structure* the paper
// exploits emerges from device physics plus the cell topology, and to let
// experiments sweep device choices (tube count, diameter) end to end.
#pragma once

#include "common/types.hpp"

namespace cnt {

/// Literature-anchored CNFET device description.
struct CnfetDeviceParams {
  /// Parallel semiconducting tubes per device. More tubes: linearly more
  /// drive current and channel capacitance.
  u32 tubes_per_device = 6;
  /// Tube diameter in nm; bandgap Eg ~ 0.84 eV / d, so smaller tubes have
  /// higher threshold and lower on-current at fixed VDD.
  double diameter_nm = 1.5;
  /// Supply voltage.
  double vdd = 0.85;
  /// On-current per tube at nominal overdrive, in uA (literature: ~20-25
  /// uA/tube for well-contacted semiconducting CNTs).
  double ion_per_tube_ua = 22.0;
  /// Gate capacitance per tube, in aF (quantum + electrostatic, ~50 nm
  /// gate length).
  double cgate_per_tube_af = 45.0;
  /// Parasitic (contact + fringe) capacitance per device, in aF.
  double cparasitic_af = 110.0;
  /// n-type / p-type drive imbalance: p-CNFETs are contact-limited; their
  /// on-current is this fraction of the n-type's (literature ~0.5-0.8).
  double p_drive_ratio = 0.6;
};

/// Derived device quantities.
struct CnfetDevice {
  double vth = 0;          ///< threshold voltage (V)
  double ion_n = 0;        ///< n-type on-current (A)
  double ion_p = 0;        ///< p-type on-current (A)
  double c_device = 0;     ///< total switched capacitance per device (F)
  double switch_energy = 0;///< C * VDD^2 of one device transition (J)
  double r_on_n = 0;       ///< effective on-resistance, n-type (Ohm)
  double r_on_p = 0;       ///< effective on-resistance, p-type (Ohm)
};

/// Evaluate the device model. Throws std::invalid_argument for
/// non-physical parameters (zero tubes, diameter outside [0.7, 3] nm,
/// vdd <= vth).
[[nodiscard]] CnfetDevice evaluate(const CnfetDeviceParams& p);

}  // namespace cnt
