// Derive the per-bit SRAM energies (the paper's Table `tab:rw-analysis`)
// from the CNFET device model plus the cell/array topology.
//
// Cell topology assumed: the CNFET 6T cell the paper builds on, accessed
// single-ended for energy (one bitline swings per operation). The
// value-asymmetry then falls out of the topology:
//
//  * read '0'  -- the precharged bitline discharges through the access +
//    pull-down path: the full bitline capacitance swings (expensive).
//  * read '1'  -- the bitline stays near its precharge level; only the
//    sense amp's input settles (cheap).
//  * write '1' -- the cell's internal node and the bitline must be driven
//    high through the weaker p-type path, fighting the pull-down until the
//    cell flips; charge and crowbar current make this the expensive write.
//  * write '0' -- the strong n-type path yanks the node down quickly with
//    little bitline movement (cheap).
//
// The derivation produces the same *structure* the paper states (wr1/wr0
// ~ 10x, E_rd0 - E_rd1 ~ E_wr1 - E_wr0); tests pin those anchors, and a
// bench sweeps device parameters to show the end-to-end conclusion's
// robustness.
#pragma once

#include "device/cnfet_model.hpp"
#include "energy/tech_params.hpp"

namespace cnt {

/// Array context for the bitline model.
struct ArrayContext {
  usize rows = 128;                ///< cells per bitline (subarray depth)
  double cbl_per_cell_af = 95.0;   ///< bitline wire+drain cap per cell (aF)
  double sense_swing_v = 0.12;     ///< differential swing the sense amp needs
  /// Crowbar/short-circuit energy factor for the contended write-'1'
  /// transition (bitline-swing multiples burned while the weak p-type
  /// driver fights the cell's pull-down). Fitted to literature cell
  /// characterization.
  double write1_contention_factor = 1.9;
  /// Bitline overshoot past the sense threshold on a '0' read (the line
  /// keeps discharging during sense latency). Fitted.
  double read0_overshoot = 1.9;
  /// Residual bitline droop on a '1' read, as a fraction of the sense
  /// swing. Fitted.
  double read1_residual = 0.28;
};

/// Derive the four per-bit energies from the device + array models.
[[nodiscard]] BitEnergies derive_bit_energies(const CnfetDeviceParams& dev,
                                              const ArrayContext& arr = {});

/// Full TechParams with peripherals scaled from the device's switch energy
/// (name: "CNFET-derived").
[[nodiscard]] TechParams derive_tech_params(const CnfetDeviceParams& dev,
                                            const ArrayContext& arr = {});

}  // namespace cnt
