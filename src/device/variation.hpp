// CNFET process variation.
//
// CNFET fabrication suffers tube-count variation (a device gets a Poisson-
// ish number of semiconducting tubes after metallic-CNT removal) and
// diameter spread, which perturb drive currents and capacitances and with
// them the per-bit energies. This module provides Monte-Carlo sampling of
// perturbed cells so experiments can report the headline saving with error
// bars instead of a single point.
#pragma once

#include "common/rng.hpp"
#include "device/cnfet_model.hpp"
#include "energy/tech_params.hpp"

namespace cnt {

struct VariationParams {
  /// Std-dev of the tube count around the nominal, in tubes (after
  /// metallic-tube removal; literature ~1 tube at 6 nominal).
  double tube_count_sigma = 1.0;
  /// Relative std-dev of tube diameter (~4-6% for sorted CNT solutions).
  double diameter_rel_sigma = 0.05;
  /// Relative std-dev applied directly to the array/peripheral
  /// capacitances (lithographic variation).
  double cap_rel_sigma = 0.03;
};

/// Sample one perturbed device instance. The tube count is clamped to at
/// least 1 and the diameter to the model's physical range.
[[nodiscard]] CnfetDeviceParams sample_device(const CnfetDeviceParams& nominal,
                                              const VariationParams& var,
                                              Rng& rng);

/// Sample a perturbed BitEnergies table by evaluating the cell derivation
/// on a sampled device with capacitance noise.
[[nodiscard]] BitEnergies sample_bit_energies(const CnfetDeviceParams& nominal,
                                              const VariationParams& var,
                                              Rng& rng);

}  // namespace cnt
