#include "device/cnfet_model.hpp"

#include <cmath>
#include <stdexcept>

namespace cnt {

CnfetDevice evaluate(const CnfetDeviceParams& p) {
  if (p.tubes_per_device == 0) {
    throw std::invalid_argument("cnfet: tubes_per_device must be > 0");
  }
  if (p.diameter_nm < 0.7 || p.diameter_nm > 3.0) {
    throw std::invalid_argument(
        "cnfet: diameter outside the semiconducting-CNT range [0.7, 3] nm");
  }
  if (p.p_drive_ratio <= 0.0 || p.p_drive_ratio > 1.0) {
    throw std::invalid_argument("cnfet: p_drive_ratio must be in (0, 1]");
  }

  CnfetDevice d;
  // Bandgap Eg ~ 0.84 eV / d(nm); Vth ~ Eg / 2q.
  const double eg = 0.84 / p.diameter_nm;
  d.vth = eg / 2.0;
  if (p.vdd <= d.vth) {
    throw std::invalid_argument("cnfet: vdd must exceed the threshold");
  }

  // On-current scales with tube count and with the gate overdrive relative
  // to the nominal characterization point (0.85 V supply, 1.5 nm tube).
  const double nominal_overdrive = 0.85 - 0.84 / 1.5 / 2.0;
  const double overdrive = p.vdd - d.vth;
  const double drive_scale = overdrive / nominal_overdrive;
  d.ion_n = static_cast<double>(p.tubes_per_device) * p.ion_per_tube_ua *
            1e-6 * drive_scale;
  d.ion_p = d.ion_n * p.p_drive_ratio;

  d.c_device = (static_cast<double>(p.tubes_per_device) *
                    p.cgate_per_tube_af +
                p.cparasitic_af) *
               1e-18;
  d.switch_energy = d.c_device * p.vdd * p.vdd;

  d.r_on_n = p.vdd / d.ion_n;
  d.r_on_p = p.vdd / d.ion_p;
  return d;
}

}  // namespace cnt
