// Shared machinery for energy-accounting policies (AccessSink adapters).
//
// A policy observes the functional cache's access events and charges an
// EnergyLedger according to its storage scheme. All policies charge the
// same peripheral costs (decode, tag, output) through the helpers here, so
// differences between ledgers isolate the data-array encoding effects.
#pragma once

#include <string>
#include <utility>

#include "common/access_event.hpp"
#include "common/bits.hpp"
#include "common/types.hpp"
#include "energy/array_model.hpp"
#include "energy/energy_ledger.hpp"
#include "energy/tech_params.hpp"
#include "common/protection.hpp"

namespace cnt {

/// How much of the data array a store drives.
///
/// In a column-muxed SRAM a *read* discharges the bitlines of every cell on
/// the asserted row (the whole line's worth of columns), but a *write* only
/// drives the accessed word's columns through the write drivers. kWord
/// models that physics and is the library default; kLine is the paper's
/// simplification (Eqs. (4)/(5) charge L bits per access in both
/// directions) and is kept as the paper-exact ablation.
enum class WriteGranularity : u8 {
  kLine,  ///< every store writes all L line bits (paper model)
  kWord,  ///< a store writes only the accessed word's bits (physical model)
};

[[nodiscard]] constexpr const char* to_string(WriteGranularity g) noexcept {
  return g == WriteGranularity::kLine ? "line" : "word";
}

class EnergyPolicyBase : public AccessSink {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const EnergyLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const ArrayModel& array() const noexcept { return array_; }
  [[nodiscard]] const TechParams& tech() const noexcept { return tech_; }
  [[nodiscard]] WriteGranularity write_granularity() const noexcept {
    return write_gran_;
  }

  /// Configure the protection scheme this policy's array carries (default:
  /// none, zero cost). The runner sizes the spec per policy -- baseline
  /// arrays cover the data line, the CNT array also covers its direction
  /// bits -- and widens the array geometry's meta_bits by spec.check_bits
  /// so decode and leakage see the wider rows.
  void set_protection(const ProtectionSpec& spec) noexcept { prot_ = spec; }
  [[nodiscard]] const ProtectionSpec& protection() const noexcept {
    return prot_;
  }

 protected:
  EnergyPolicyBase(std::string name, const TechParams& tech,
                   const ArrayGeometry& geom,
                   WriteGranularity write_gran = WriteGranularity::kWord)
      : name_(std::move(name)),
        tech_(tech),
        array_(tech, geom),
        write_gran_(write_gran) {}

  /// Bit range of the line a write-hit drives under the configured
  /// granularity. ev.size == 0 (line-granular traffic from an upper level)
  /// always drives the whole line.
  [[nodiscard]] std::pair<usize, usize> written_bit_range(
      const AccessEvent& ev) const noexcept {
    if (write_gran_ == WriteGranularity::kLine || ev.size == 0) {
      return {0, array_.geometry().line_bits()};
    }
    const usize lo = static_cast<usize>(ev.offset) * 8;
    return {lo, lo + static_cast<usize>(ev.size) * 8};
  }

  /// Row decode + wordline for one array operation.
  void charge_decode() {
    ledger_.charge(EnergyCategory::kDecode, array_.decode_energy());
  }

  /// Tag-side lookup for this access.
  void charge_tag_lookup(const AccessEvent& ev) {
    ledger_.charge(EnergyCategory::kTagRead,
                   array_.tag_lookup_energy(ev.tag_bits_read,
                                            ev.tag_ones_read));
  }

  /// Tag write on a fill.
  void charge_tag_write(const AccessEvent& ev) {
    if (ev.tag_bits_written != 0) {
      ledger_.charge(EnergyCategory::kTagWrite,
                     array_.tag_write_energy(ev.tag_bits_written,
                                             ev.tag_ones_written));
    }
  }

  /// IO drivers for `bits` transferred.
  void charge_output(usize bits) {
    ledger_.charge(EnergyCategory::kOutput, array_.output_energy(bits));
  }

  /// Bits moved to/from the CPU for this access (the word, or the whole
  /// line for line-granular traffic from an upper level, ev.size == 0).
  [[nodiscard]] usize transfer_bits(const AccessEvent& ev) const noexcept {
    return ev.size != 0 ? static_cast<usize>(ev.size) * 8
                        : array_.geometry().line_bits();
  }

  // --- Protection (parity/SECDED) costs -------------------------------
  // Check-bit storage traffic is priced at the cell's value-averaged
  // per-bit energies (check-bit contents are not tracked; their 0/1 mix
  // averages out), and checker logic at ecc_check_per_bit per covered
  // payload bit: the syndrome/parity tree sees the whole codeword on
  // every protected operation, including partial-word writes (RMW of the
  // check field).

  /// Checker pass + check-bit read for one protected array read.
  void charge_ecc_read() {
    if (!prot_.enabled()) return;
    ledger_.charge(EnergyCategory::kEccStorage,
                   (tech_.cell.rd0 + tech_.cell.rd1) *
                       (0.5 * static_cast<double>(prot_.check_bits)));
    ledger_.charge(EnergyCategory::kEccLogic,
                   tech_.periph.ecc_check_per_bit *
                       static_cast<double>(prot_.covered_bits));
  }

  /// Check-bit regeneration + write for one protected array write.
  void charge_ecc_write() {
    if (!prot_.enabled()) return;
    ledger_.charge(EnergyCategory::kEccStorage,
                   (tech_.cell.wr0 + tech_.cell.wr1) *
                       (0.5 * static_cast<double>(prot_.check_bits)));
    ledger_.charge(EnergyCategory::kEccLogic,
                   tech_.periph.ecc_check_per_bit *
                       static_cast<double>(prot_.covered_bits));
  }

  /// Correction-path events reported by the fault campaign for this
  /// access (corrected bits + detections both drive the syndrome decoder).
  void charge_ecc_events(const LineFaultReport& rep) {
    if (!prot_.enabled()) return;
    const u32 events = rep.corrected + rep.detected;
    if (events == 0) return;
    ledger_.charge(EnergyCategory::kEccLogic,
                   tech_.periph.ecc_correct_per_event *
                       static_cast<double>(events));
  }

  /// Full per-access protection accounting: one checker pass per array
  /// operation this event implies (demand read/write, victim writeback
  /// read, fill write) plus the campaign's correction events. Policies
  /// whose extra array operations are not visible on the event (CNT
  /// re-encodes, FIFO drains) charge those separately.
  void charge_ecc(const AccessEvent& ev) {
    if (!prot_.enabled()) return;
    switch (ev.kind) {
      case AccessKind::kReadHit:
        charge_ecc_read();
        break;
      case AccessKind::kWriteHit:
        charge_ecc_write();
        break;
      case AccessKind::kReadMissFill:
      case AccessKind::kWriteMissFill:
        if (ev.evicted_valid && ev.evicted_dirty) charge_ecc_read();
        charge_ecc_write();
        break;
      case AccessKind::kWriteAround:
        return;
    }
    charge_ecc_events(ev.fault);
  }

  /// Invoke fn(bit_lo, bit_hi) for every dirty 8-byte word of the evicted
  /// victim (sectored writebacks narrow the mask; otherwise it covers the
  /// whole line). Returns the number of dirty words visited.
  template <typename Fn>
  // cnt-lint: nodiscard-ok -- the visited count is auxiliary telemetry
  usize for_each_dirty_word(const AccessEvent& ev, Fn&& fn) const {
    const usize words = array_.geometry().line_bytes / 8;
    usize visited = 0;
    for (usize w = 0; w < words; ++w) {
      if ((ev.evicted_dirty_words >> w) & 1u) {
        fn(w * 64, w * 64 + 64);
        ++visited;
      }
    }
    return visited;
  }

  std::string name_;
  TechParams tech_;
  ArrayModel array_;
  EnergyLedger ledger_;
  WriteGranularity write_gran_;
  ProtectionSpec prot_{};
};

}  // namespace cnt
