// Shared machinery for energy-accounting policies (AccessSink adapters).
//
// A policy observes the functional cache's access events and charges an
// EnergyLedger according to its storage scheme. All policies charge the
// same peripheral costs (decode, tag, output) through the helpers here, so
// differences between ledgers isolate the data-array encoding effects.
#pragma once

#include <string>
#include <utility>

#include "cache/events.hpp"
#include "common/bits.hpp"
#include "common/types.hpp"
#include "energy/array_model.hpp"
#include "energy/energy_ledger.hpp"
#include "energy/tech_params.hpp"

namespace cnt {

/// How much of the data array a store drives.
///
/// In a column-muxed SRAM a *read* discharges the bitlines of every cell on
/// the asserted row (the whole line's worth of columns), but a *write* only
/// drives the accessed word's columns through the write drivers. kWord
/// models that physics and is the library default; kLine is the paper's
/// simplification (Eqs. (4)/(5) charge L bits per access in both
/// directions) and is kept as the paper-exact ablation.
enum class WriteGranularity : u8 {
  kLine,  ///< every store writes all L line bits (paper model)
  kWord,  ///< a store writes only the accessed word's bits (physical model)
};

[[nodiscard]] constexpr const char* to_string(WriteGranularity g) noexcept {
  return g == WriteGranularity::kLine ? "line" : "word";
}

class EnergyPolicyBase : public AccessSink {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const EnergyLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const ArrayModel& array() const noexcept { return array_; }
  [[nodiscard]] const TechParams& tech() const noexcept { return tech_; }
  [[nodiscard]] WriteGranularity write_granularity() const noexcept {
    return write_gran_;
  }

 protected:
  EnergyPolicyBase(std::string name, const TechParams& tech,
                   const ArrayGeometry& geom,
                   WriteGranularity write_gran = WriteGranularity::kWord)
      : name_(std::move(name)),
        tech_(tech),
        array_(tech, geom),
        write_gran_(write_gran) {}

  /// Bit range of the line a write-hit drives under the configured
  /// granularity. ev.size == 0 (line-granular traffic from an upper level)
  /// always drives the whole line.
  [[nodiscard]] std::pair<usize, usize> written_bit_range(
      const AccessEvent& ev) const noexcept {
    if (write_gran_ == WriteGranularity::kLine || ev.size == 0) {
      return {0, array_.geometry().line_bits()};
    }
    const usize lo = static_cast<usize>(ev.offset) * 8;
    return {lo, lo + static_cast<usize>(ev.size) * 8};
  }

  /// Row decode + wordline for one array operation.
  void charge_decode() {
    ledger_.charge(EnergyCategory::kDecode, array_.decode_energy());
  }

  /// Tag-side lookup for this access.
  void charge_tag_lookup(const AccessEvent& ev) {
    ledger_.charge(EnergyCategory::kTagRead,
                   array_.tag_lookup_energy(ev.tag_bits_read,
                                            ev.tag_ones_read));
  }

  /// Tag write on a fill.
  void charge_tag_write(const AccessEvent& ev) {
    if (ev.tag_bits_written != 0) {
      ledger_.charge(EnergyCategory::kTagWrite,
                     array_.tag_write_energy(ev.tag_bits_written,
                                             ev.tag_ones_written));
    }
  }

  /// IO drivers for `bits` transferred.
  void charge_output(usize bits) {
    ledger_.charge(EnergyCategory::kOutput, array_.output_energy(bits));
  }

  /// Bits moved to/from the CPU for this access (the word, or the whole
  /// line for line-granular traffic from an upper level, ev.size == 0).
  [[nodiscard]] usize transfer_bits(const AccessEvent& ev) const noexcept {
    return ev.size != 0 ? static_cast<usize>(ev.size) * 8
                        : array_.geometry().line_bits();
  }

  /// Invoke fn(bit_lo, bit_hi) for every dirty 8-byte word of the evicted
  /// victim (sectored writebacks narrow the mask; otherwise it covers the
  /// whole line). Returns the number of dirty words visited.
  template <typename Fn>
  usize for_each_dirty_word(const AccessEvent& ev, Fn&& fn) const {
    const usize words = array_.geometry().line_bytes / 8;
    usize visited = 0;
    for (usize w = 0; w < words; ++w) {
      if ((ev.evicted_dirty_words >> w) & 1u) {
        fn(w * 64, w * 64 + 64);
        ++visited;
      }
    }
    return visited;
  }

  std::string name_;
  TechParams tech_;
  ArrayModel array_;
  EnergyLedger ledger_;
  WriteGranularity write_gran_;
};

}  // namespace cnt
