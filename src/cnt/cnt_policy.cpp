#include "cnt/cnt_policy.hpp"

#include <bit>
#include <cassert>

#include "common/bits.hpp"
#include "energy/sram_cell.hpp"

namespace cnt {

const char* to_string(FillDirectionPolicy p) noexcept {
  switch (p) {
    case FillDirectionPolicy::kAsIs: return "as-is";
    case FillDirectionPolicy::kMinWriteEnergy: return "min-write";
    case FillDirectionPolicy::kReadOptimized: return "read-optimized";
    case FillDirectionPolicy::kByMissType: return "by-miss-type";
  }
  return "?";
}

const char* to_string(HistoryScope s) noexcept {
  return s == HistoryScope::kPerLine ? "per-line" : "per-set";
}

namespace {

// Adds on top of any meta bits already in the base geometry (e.g.
// protection check bits sized by the runner).
ArrayGeometry with_meta(ArrayGeometry g, usize meta_bits) {
  g.meta_bits += meta_bits;
  return g;
}

usize history_width(const CntConfig& cfg) {
  return 2 * bits_to_hold(cfg.window - 1);
}

// Per-line H&D width for the array geometry. With per-set history the
// counters live in a side array shared by the ways; amortize its cells
// per line (ceiling) for the area/leakage accounting. The zero-line
// extension adds one flag bit per line.
usize meta_width(const CntConfig& cfg, usize ways) {
  const usize hist = history_width(cfg);
  const usize hist_per_line = cfg.history_scope == HistoryScope::kPerLine
                                  ? hist
                                  : (hist + ways - 1) / ways;
  return hist_per_line + cfg.partitions + (cfg.zero_line_opt ? 1 : 0);
}

// Per-stored-bit write weight matching the accounting granularity: a
// word-granular store drives ~8 B of an L-byte line.
double predictor_write_weight(const CntConfig& cfg, usize line_bytes) {
  if (cfg.write_granularity == WriteGranularity::kLine) return 1.0;
  constexpr double kNominalWordBytes = 8.0;
  return kNominalWordBytes / static_cast<double>(line_bytes);
}

}  // namespace

CntPolicy::CntPolicy(std::string name, const TechParams& tech,
                     ArrayGeometry geom, const CntConfig& cfg)
    : EnergyPolicyBase(std::move(name), tech,
                       with_meta(geom, meta_width(cfg, geom.ways)),
                       cfg.write_granularity),
      cfg_(cfg),
      predictor_(tech.cell, PartitionScheme(geom.line_bytes, cfg.partitions),
                 cfg.window, cfg.delta_t,
                 predictor_write_weight(cfg, geom.line_bytes)),
      queue_(cfg.fifo_depth),
      ways_(geom.ways),
      states_(geom.sets * geom.ways),
      set_hist_(cfg.history_scope == HistoryScope::kPerSet ? geom.sets : 0),
      history_bits_(predictor_.history_bits()),
      part_energy_(tech.cell, predictor_.scheme().partition_bits()),
      word_energy_(tech.cell, 64),
      meta_energy_(tech.cell, history_bits_ + cfg.partitions),
      hist_energy_(tech.cell, history_bits_),
      scratch_a_(geom.line_bytes),
      scratch_b_(geom.line_bytes) {}

HistoryCounters& CntPolicy::history_of(u32 set, LineState& st) {
  return cfg_.history_scope == HistoryScope::kPerSet ? set_hist_[set]
                                                     : st.hist;
}

usize CntPolicy::meta_bits() const noexcept {
  return history_bits_ + cfg_.partitions;
}

u64 CntPolicy::directions(u32 set, u32 way) const {
  return states_[static_cast<usize>(set) * ways_ + way].directions;
}

const LineState& CntPolicy::line_state(u32 set, u32 way) const {
  return states_[static_cast<usize>(set) * ways_ + way];
}

void CntPolicy::on_access(const AccessEvent& ev) {
  charge_decode();
  charge_tag_lookup(ev);
  charge_ecc(ev);

  switch (ev.kind) {
    case AccessKind::kReadHit:
      handle_hit(ev, /*is_write=*/false);
      break;
    case AccessKind::kWriteHit:
      handle_hit(ev, /*is_write=*/true);
      break;
    case AccessKind::kReadMissFill:
    case AccessKind::kWriteMissFill:
      handle_fill(ev);
      break;
    case AccessKind::kWriteAround:
      break;
  }

  drain(ev.idle_slots);
}

void CntPolicy::handle_hit(const AccessEvent& ev, bool is_write) {
  LineState& st = state(ev.set, ev.way);

  // The H&D field is read with the line: the encoder needs the direction
  // bits and the predictor needs the counters. Under a fault hook the
  // mask the encoder gets may differ from the policy's intent.
  charge_meta_read(history_of(ev.set, st), st.directions);
  const u64 dirs = effective_directions(ev.set, ev.way, st.directions);

  if (cfg_.zero_line_opt && handle_zero_line(ev, st, is_write)) return;

  if (is_write) {
    const auto [bit_lo, bit_hi] = written_bit_range(ev);
    if (cfg_.flip_aware_writes) {
      ledger_.charge(EnergyCategory::kDataWrite,
                     flip_aware_write_cost(ev.line_before, ev.line_after,
                                           dirs, bit_lo, bit_hi));
    } else {
      const usize ones = stored_ones_range(predictor_.scheme(), ev.line_after,
                                           dirs, bit_lo, bit_hi);
      ledger_.charge(EnergyCategory::kDataWrite,
                     write_energy_counts(tech_.cell, bit_hi - bit_lo, ones));
    }
  } else {
    ledger_.charge(EnergyCategory::kDataRead,
                   stored_read_cost(ev.line_after, dirs));
  }
  charge_encoder_pass();
  charge_output(transfer_bits(ev));

  run_predictor(ev, st, is_write);
}

void CntPolicy::handle_fill(const AccessEvent& ev) {
  LineState& st = state(ev.set, ev.way);

  // Victim writeback: a second array operation reads the stored (encoded)
  // victim out through the decoder side of the adaptive encoder. A
  // zero-flagged victim never touches the data array; its zeros are
  // synthesized at the interface.
  if (ev.evicted_valid && ev.evicted_dirty) {
    charge_decode();
    charge_meta_read(history_of(ev.set, st), st.directions);
    const u64 dirs = effective_directions(ev.set, ev.way, st.directions);
    if (!(cfg_.zero_line_opt && st.zero_flag)) {
      Energy rd{};
      usize dirty_bits = 0;
      for_each_dirty_word(ev, [&](usize lo, usize hi) {
        rd += word_energy_.read(stored_ones_range(
            predictor_.scheme(), ev.line_before, dirs, lo, hi));
        dirty_bits += hi - lo;
      });
      ledger_.charge(EnergyCategory::kDataRead, rd);
      ledger_.charge(EnergyCategory::kEncoderLogic,
                     static_cast<double>(dirty_bits) *
                         tech_.periph.encoder_per_bit);
      charge_output(dirty_bits);
    } else {
      charge_output(array_.geometry().line_bits());
    }
  }

  // Fresh line: new generation invalidates any queued re-encode. Per-line
  // history restarts with the line; per-set counters are shared and keep
  // running across fills.
  ++st.generation;
  st.pending = false;
  st.hist = HistoryCounters{};
  st.write_filled = ev.kind == AccessKind::kWriteMissFill;
  // One sweep yields every partition's raw count; their sum is the line's
  // popcount, so the zero-line test rides along for free.
  usize raw_ones[64];
  const usize total_ones = partition_ones_of(ev.line_after, raw_ones);
  st.zero_flag = cfg_.zero_line_opt && total_ones == 0;

  if (st.zero_flag) {
    // Zero-line elision: the flag is authoritative; skip the array write.
    ++stats_.zero_fills;
    st.directions = 0;
    note_directions_written(ev.set, ev.way, st.directions);
    charge_meta_full_write(history_of(ev.set, st), st.directions);
    charge_tag_write(ev);
    charge_output(array_.geometry().line_bits());
    return;
  }

  const Energy fill_cost = fill_write_cost(
      std::span<const usize>(raw_ones, predictor_.scheme().partitions()),
      ev.kind == AccessKind::kWriteMissFill, st.directions);
  note_directions_written(ev.set, ev.way, st.directions);

  charge_decode();
  ledger_.charge(EnergyCategory::kDataWrite, fill_cost);
  charge_encoder_pass();
  charge_meta_full_write(history_of(ev.set, st), st.directions);
  charge_tag_write(ev);
  charge_output(array_.geometry().line_bits());
}

bool CntPolicy::handle_zero_line(const AccessEvent& ev, LineState& st,
                                 bool is_write) {
  if (!st.zero_flag) {
    // A store that zeroes the whole line arms the flag: from then on the
    // array contents are ignored, so nothing needs to be written.
    if (is_write && popcount(ev.line_after) == 0) {
      st.zero_flag = true;
      ++stats_.zero_fills;
      charge_meta_history_write(history_of(ev.set, st));  // flag + counters
      charge_output(transfer_bits(ev));
      return true;
    }
    return false;
  }

  if (!is_write) {
    // Read of a flagged line: served entirely from the flag.
    ++stats_.zero_reads;
    charge_output(transfer_bits(ev));
    return true;
  }

  usize raw_ones[64];
  if (partition_ones_of(ev.line_after, raw_ones) == 0) {
    // Still all-zero after the store: nothing to materialize.
    charge_output(transfer_bits(ev));
    return true;
  }

  // The store un-zeroes the line: materialize the whole line in a freshly
  // chosen encoding (a full-line array write regardless of granularity).
  // The original fill's miss type still carries the usage prediction.
  st.zero_flag = false;
  ++stats_.zero_materializations;
  const Energy materialize_cost = fill_write_cost(
      std::span<const usize>(raw_ones, predictor_.scheme().partitions()),
      st.write_filled, st.directions);
  note_directions_written(ev.set, ev.way, st.directions);
  charge_decode();
  ledger_.charge(EnergyCategory::kDataWrite, materialize_cost);
  charge_encoder_pass();
  charge_meta_full_write(history_of(ev.set, st), st.directions);
  charge_output(transfer_bits(ev));
  return true;
}

void CntPolicy::run_predictor(const AccessEvent& ev, LineState& st,
                              bool is_write) {
  // Counter increment happens on every access (A_num, Wr_num).
  ledger_.charge(EnergyCategory::kPredictorLogic,
                 tech_.periph.predictor_update);

  HistoryCounters& hist = history_of(ev.set, st);
  const PredictorDecision d =
      predictor_.on_access(hist, st.directions, is_write, ev.line_after);

  // The updated (or reset) counters are written back to the H field.
  charge_meta_history_write(hist);

  if (!d.window_completed) return;

  ++stats_.windows_evaluated;
  // Window evaluation: popcount tree over the line + table lookup.
  ledger_.charge(EnergyCategory::kPredictorLogic,
                 static_cast<double>(array_.geometry().line_bits()) *
                     tech_.periph.predictor_eval_per_bit);

  if (!d.switch_requested) return;
  if (st.pending) {
    ++stats_.skipped_pending;
    return;
  }

  // Capture the re-encoded data cost now (the data FIFO holds the line as
  // of decision time) and enqueue.
  const u64 changed = st.directions ^ d.new_directions;
  Energy write_cost{};
  const auto& scheme = predictor_.scheme();
  for (usize p = 0; p < scheme.partitions(); ++p) {
    if (!((changed >> p) & 1u)) continue;
    const bool new_dir = (d.new_directions >> p) & 1u;
    const usize ones = stored_partition_ones(scheme, ev.line_after, p, new_dir);
    write_cost += part_energy_.write(ones);
  }

  ReencodeRequest req;
  req.set = ev.set;
  req.way = ev.way;
  req.new_directions = d.new_directions;
  req.generation = st.generation;
  req.write_cost = write_cost;
  req.partitions_flipped = d.partitions_flipped;

  if (queue_.push(req)) {
    st.pending = true;
    ++stats_.switch_decisions;
    stats_.partition_flips_requested += d.partitions_flipped;
    // Data FIFO push (line bytes) + index FIFO push (set/way/dirs ~ 8 B).
    ledger_.charge(EnergyCategory::kFifo,
                   static_cast<double>(array_.geometry().line_bytes + 8) *
                       tech_.periph.fifo_per_byte);
  }
}

usize CntPolicy::partition_ones_of(std::span<const u8> line,
                                   usize* ones_out) const {
  const auto& scheme = predictor_.scheme();
  usize total = 0;
  for (usize p = 0; p < scheme.partitions(); ++p) {
    ones_out[p] = detail::partition_raw_ones(scheme, line.data(), p);
    total += ones_out[p];
  }
  return total;
}

Energy CntPolicy::fill_write_cost(std::span<const usize> raw_ones,
                                  bool write_miss, u64& dirs_out) {
  FillDirectionPolicy policy = cfg_.fill_policy;
  if (policy == FillDirectionPolicy::kByMissType) {
    policy = write_miss ? FillDirectionPolicy::kMinWriteEnergy
                        : FillDirectionPolicy::kReadOptimized;
  }
  const usize pb = predictor_.scheme().partition_bits();
  const bool as_is = policy == FillDirectionPolicy::kAsIs;
  const bool min_write = policy == FillDirectionPolicy::kMinWriteEnergy;
  u64 dirs = 0;
  Energy total{};
  for (usize p = 0; p < raw_ones.size(); ++p) {
    const usize raw = raw_ones[p];
    usize stored = raw;
    if (!as_is) {
      const bool invert = min_write
                              ? raw * 2 > pb   // majority '1': cheaper inverted
                              : raw * 2 < pb;  // read-optimized: maximize '1's
      if (invert) {
        dirs |= (1ULL << p);
        ++stats_.fill_inversions;
        stored = pb - raw;
      }
    }
    total += part_energy_.write(stored);
  }
  dirs_out = dirs;
  return total;
}

// The H&D field is stored raw. That is already the energy-right choice for
// this field: direction bits on read-optimized lines are mostly '1'
// (stored-'1' reads are the cheap case), and the history counters are
// rewritten every access, where mostly-'0' values hit the cheap write
// case. A complemented variant was measured and loses on both counts.

usize CntPolicy::stored_dir_ones(u64 directions) const noexcept {
  return static_cast<usize>(std::popcount(directions));
}

void CntPolicy::charge_meta_read(const HistoryCounters& hist,
                                 u64 directions) {
  if (!cfg_.account_metadata) return;
  const usize ones = static_cast<usize>(std::popcount(hist.a_num)) +
                     static_cast<usize>(std::popcount(hist.wr_num)) +
                     stored_dir_ones(directions);
  ledger_.charge(EnergyCategory::kMetaRead, meta_energy_.read(ones));
}

void CntPolicy::charge_meta_history_write(const HistoryCounters& hist) {
  if (!cfg_.account_metadata) return;
  const usize ones = static_cast<usize>(std::popcount(hist.a_num)) +
                     static_cast<usize>(std::popcount(hist.wr_num));
  ledger_.charge(EnergyCategory::kMetaWrite, hist_energy_.write(ones));
}

void CntPolicy::charge_meta_full_write(const HistoryCounters& hist,
                                       u64 directions) {
  if (!cfg_.account_metadata) return;
  const usize ones = static_cast<usize>(std::popcount(hist.a_num)) +
                     static_cast<usize>(std::popcount(hist.wr_num)) +
                     stored_dir_ones(directions);
  ledger_.charge(EnergyCategory::kMetaWrite, meta_energy_.write(ones));
}

void CntPolicy::charge_encoder_pass() {
  ledger_.charge(EnergyCategory::kEncoderLogic,
                 static_cast<double>(array_.geometry().line_bits()) *
                     tech_.periph.encoder_per_bit);
}

Energy CntPolicy::stored_read_cost(std::span<const u8> logical,
                                   u64 dirs) const {
  const auto& scheme = predictor_.scheme();
  Energy total{};
  for (usize p = 0; p < scheme.partitions(); ++p) {
    const usize ones =
        stored_partition_ones(scheme, logical, p, (dirs >> p) & 1u);
    total += part_energy_.read(ones);
  }
  return total;
}

Energy CntPolicy::flip_aware_write_cost(std::span<const u8> before,
                                        std::span<const u8> after, u64 dirs,
                                        usize bit_lo, usize bit_hi) const {
  encode_line(predictor_.scheme(), before, dirs, scratch_a_);
  encode_line(predictor_.scheme(), after, dirs, scratch_b_);
  // Word-granular ranges are byte-aligned (access offsets and sizes are).
  const usize byte_lo = bit_lo / 8;
  const usize byte_hi = (bit_hi + 7) / 8;
  return write_energy_flip_aware(
      tech_.cell,
      std::span<const u8>(scratch_a_).subspan(byte_lo, byte_hi - byte_lo),
      std::span<const u8>(scratch_b_).subspan(byte_lo, byte_hi - byte_lo));
}

u64 CntPolicy::effective_directions(u32 set, u32 way, u64 logical) {
  if (dir_hook_ == nullptr) return logical;
  const DirectionFaultHook::DirRead dr = dir_hook_->read_directions(set, way);
  charge_ecc_events(dr.report);
  return dr.effective;
}

void CntPolicy::note_directions_written(u32 set, u32 way, u64 dirs) {
  if (dir_hook_ != nullptr) dir_hook_->write_directions(set, way, dirs);
}

void CntPolicy::drain(u32 slots) {
  for (u32 i = 0; i < slots && !queue_.empty(); ++i) {
    const auto req = queue_.pop();
    assert(req.has_value());
    // Index+data FIFO pop traffic.
    ledger_.charge(EnergyCategory::kFifo,
                   static_cast<double>(array_.geometry().line_bytes + 8) *
                       tech_.periph.fifo_per_byte);

    LineState& st = state(req->set, req->way);
    if (st.generation != req->generation) {
      queue_.note_stale();
      continue;
    }

    // Commit: one array write of the flipped partitions (E_encode) plus the
    // direction-bit update, charged wholly to the re-encode category.
    ledger_.charge(EnergyCategory::kReencode,
                   array_.decode_energy() + req->write_cost);
    if (cfg_.account_metadata) {
      ledger_.charge(EnergyCategory::kReencode,
                     write_energy_counts(tech_.cell, cfg_.partitions,
                                         stored_dir_ones(req->new_directions)));
    }
    st.directions = req->new_directions;
    note_directions_written(req->set, req->way, st.directions);
    // A re-encode rewrites flipped partitions, so the protection check
    // bits are regenerated and rewritten with them.
    charge_ecc_write();
    st.pending = false;
    ++stats_.reencodes_applied;
    stats_.partition_flips_applied += req->partitions_flipped;
  }
}

}  // namespace cnt
