// Threshold machinery of the encoding-direction predictor
// (paper Section III.C, Eqs. (1)-(6)).
//
// Definitions, for a window of W accesses to one line of L stored bits with
// N1 '1' bits, of which Wr_num were writes (R = W - Wr_num reads):
//
//   E(N1)      = R*(N1*E_rd1 + (L-N1)*E_rd0)
//              + Wr*(N1*E_wr1 + (L-N1)*E_wr0)              -- Eq. (4)
//   E_bar      = E(L - N1)                                  -- Eq. (5)
//   E_encode   = N1*E_wr0 + (L-N1)*E_wr1                    -- re-encode write
//   E_save     = R*(E_rd0 - E_rd1) - Wr*(E_wr1 - E_wr0)     -- per-bit gain
//
// Switching the encoding is beneficial when E > E_bar + E_encode; solving
// the breakeven for N1 yields Eq. (6):
//
//   N1* = L * (E_save - E_wr1) / (2*E_save - (E_wr1 - E_wr0))
//
// For a read-intensive window (E_save > 0) the switch pays off when
// N1 < N1*; for a write-intensive window when N1 > N1*. The paper
// precomputes N1* for every possible Wr_num into a W+1-entry table so the
// runtime predictor is a popcount + one table lookup + one comparison.
//
// Eq. (3) gives the read-intensity classification threshold:
//   Th_rd = W / (1 + (E_rd0 - E_rd1)/(E_wr1 - E_wr0))  ~= W/2 for CNFET.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "energy/tech_params.hpp"

namespace cnt {

class ThresholdTable {
 public:
  /// Build the table for window W over a stored unit of `unit_bits` bits
  /// (the full line for whole-line encoding, one partition for partitioned
  /// encoding). `delta_t` is the optional switch-hysteresis margin from the
  /// authors' extended description: a switch is taken only when it saves
  /// more than delta_t * E_current over the window. `write_weight` scales
  /// the per-stored-bit weight of each counted write: 1.0 reproduces the
  /// paper's Eqs. (1)-(6) exactly (every access touches all L bits); under
  /// word-granular write accounting a store only drives word_bits/L of the
  /// unit, so the policy passes that ratio here to keep the predictor's
  /// energy model consistent with the accounting.
  ThresholdTable(const BitEnergies& e, usize window, usize unit_bits,
                 double delta_t = 0.0, double write_weight = 1.0);

  [[nodiscard]] usize window() const noexcept { return w_; }
  [[nodiscard]] usize unit_bits() const noexcept { return l_; }
  [[nodiscard]] double delta_t() const noexcept { return delta_t_; }

  /// Eq. (3): the read-count threshold at which both encodings break even.
  [[nodiscard]] double th_rd() const noexcept { return th_rd_; }

  /// Step 1 of Algorithm 1: classify the window. We classify by the sign of
  /// E_save (write-intensive iff E_save < 0), which is the energy-consistent
  /// reading of the algorithm's "Wr_num > Th_rd" comparison: the two
  /// coincide when E_rd0-E_rd1 ~= E_wr1-E_wr0 (the paper's CNFET case,
  /// where Th_rd ~= W/2) and the sign test stays correct for arbitrary
  /// asymmetry.
  [[nodiscard]] bool is_write_intensive(usize wr_num) const noexcept;

  /// Eq. (6) breakeven N1 for the given write count (unclamped; may fall
  /// outside [0, L] or be NaN in degenerate windows -- use should_switch()
  /// for decisions).
  [[nodiscard]] double threshold(usize wr_num) const;

  /// Step 2 of Algorithm 1: table-driven switch decision for a stored unit
  /// currently holding `bit1num` ones after a window with `wr_num` writes.
  /// Exactly equivalent to the direct energy comparison
  /// E > E_bar + E_encode (+ hysteresis margin); tests assert this.
  [[nodiscard]] bool should_switch(usize wr_num, usize bit1num) const;

  /// Direct evaluation of Eq. (4) for the window (reference path).
  [[nodiscard]] Energy window_energy(usize wr_num, usize bit1num) const;
  /// Eq. (5): the alternative encoding's window energy.
  [[nodiscard]] Energy window_energy_switched(usize wr_num,
                                              usize bit1num) const;
  /// Re-encode write cost for a unit currently holding `bit1num` ones.
  [[nodiscard]] Energy encode_cost(usize bit1num) const;

  /// E_save for the given write count (per stored bit).
  [[nodiscard]] Energy e_save(usize wr_num) const;

 private:
  BitEnergies e_;
  usize w_;
  usize l_;
  double delta_t_;
  double write_weight_;
  double th_rd_;
  /// Precomputed switch-decision table: entry [wr_num][0] = whether the
  /// window is write-intensive; switch happens when bit1num is strictly
  /// beyond `bound_[wr_num]` in the pattern's direction. We additionally
  /// precompute, per wr_num, the exact integer comparison the hardware
  /// would burn into the table.
  struct Entry {
    bool write_intensive;
    double breakeven;  ///< Eq. (6) value (may be out of range)
  };
  std::vector<Entry> table_;
};

}  // namespace cnt
