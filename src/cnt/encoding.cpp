#include "cnt/encoding.hpp"

#include <stdexcept>

namespace cnt {

// The hot kernels (encode/re-encode, stored_partition_ones, stored_ones,
// stored_ones_range) are defined inline in encoding.hpp; this file keeps
// construction-time validation and the allocating conveniences.

PartitionScheme::PartitionScheme(usize line_bytes, usize partitions)
    : line_bytes_(line_bytes), k_(partitions) {
  if (k_ == 0 || k_ > 64) {
    throw std::invalid_argument("PartitionScheme: K must be in [1, 64]");
  }
  const usize line_bits = line_bytes_ * 8;
  if (line_bits % k_ != 0 || (line_bits / k_) % 8 != 0) {
    throw std::invalid_argument(
        "PartitionScheme: K must divide the line into byte-aligned "
        "partitions");
  }
  part_bits_ = line_bits / k_;
}

std::vector<u8> encode_line(const PartitionScheme& ps,
                            std::span<const u8> logical, u64 directions) {
  std::vector<u8> out(ps.line_bytes());
  encode_line(ps, logical, directions, out);
  return out;
}

std::vector<usize> partition_ones(const PartitionScheme& ps,
                                  std::span<const u8> data) {
  std::vector<usize> ones(ps.partitions());
  for (usize p = 0; p < ps.partitions(); ++p) {
    ones[p] = detail::partition_raw_ones(ps, data.data(), p);
  }
  return ones;
}

}  // namespace cnt
