#include "cnt/encoding.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/bits.hpp"

namespace cnt {

PartitionScheme::PartitionScheme(usize line_bytes, usize partitions)
    : line_bytes_(line_bytes), k_(partitions) {
  if (k_ == 0 || k_ > 64) {
    throw std::invalid_argument("PartitionScheme: K must be in [1, 64]");
  }
  const usize line_bits = line_bytes_ * 8;
  if (line_bits % k_ != 0 || (line_bits / k_) % 8 != 0) {
    throw std::invalid_argument(
        "PartitionScheme: K must divide the line into byte-aligned "
        "partitions");
  }
  part_bits_ = line_bits / k_;
}

void encode_line(const PartitionScheme& ps, std::span<const u8> logical,
                 u64 directions, std::span<u8> out) {
  assert(logical.size() == ps.line_bytes());
  assert(out.size() == ps.line_bytes());
  std::memcpy(out.data(), logical.data(), logical.size());
  const usize pb = ps.partition_bytes();
  for (usize p = 0; p < ps.partitions(); ++p) {
    if ((directions >> p) & 1u) {
      invert(out.subspan(p * pb, pb));
    }
  }
}

std::vector<u8> encode_line(const PartitionScheme& ps,
                            std::span<const u8> logical, u64 directions) {
  std::vector<u8> out(ps.line_bytes());
  encode_line(ps, logical, directions, out);
  return out;
}

void reencode_line(const PartitionScheme& ps, std::span<u8> stored,
                   u64 old_dirs, u64 new_dirs) {
  assert(stored.size() == ps.line_bytes());
  const u64 changed = old_dirs ^ new_dirs;
  const usize pb = ps.partition_bytes();
  for (usize p = 0; p < ps.partitions(); ++p) {
    if ((changed >> p) & 1u) {
      invert(stored.subspan(p * pb, pb));
    }
  }
}

usize stored_partition_ones(const PartitionScheme& ps,
                            std::span<const u8> data, usize p,
                            bool inverted) {
  assert(p < ps.partitions());
  const usize pb = ps.partition_bytes();
  const usize raw = popcount(data.subspan(p * pb, pb));
  return inverted ? ps.partition_bits() - raw : raw;
}

usize stored_ones(const PartitionScheme& ps, std::span<const u8> logical,
                  u64 directions) {
  usize total = 0;
  for (usize p = 0; p < ps.partitions(); ++p) {
    total += stored_partition_ones(ps, logical, p, (directions >> p) & 1u);
  }
  return total;
}

usize stored_ones_range(const PartitionScheme& ps,
                        std::span<const u8> logical, u64 directions,
                        usize bit_begin, usize bit_end) {
  assert(bit_begin <= bit_end);
  assert(bit_end <= ps.line_bits());
  usize total = 0;
  for (usize p = 0; p < ps.partitions(); ++p) {
    const usize lo = std::max(bit_begin, ps.bit_begin(p));
    const usize hi = std::min(bit_end, ps.bit_end(p));
    if (lo >= hi) continue;
    const usize raw = popcount_range(logical, lo, hi);
    total += ((directions >> p) & 1u) ? (hi - lo) - raw : raw;
  }
  return total;
}

std::vector<usize> partition_ones(const PartitionScheme& ps,
                                  std::span<const u8> data) {
  std::vector<usize> ones(ps.partitions());
  const usize pb = ps.partition_bytes();
  for (usize p = 0; p < ps.partitions(); ++p) {
    ones[p] = popcount(data.subspan(p * pb, pb));
  }
  return ones;
}

}  // namespace cnt
