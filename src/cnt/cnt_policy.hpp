// CNT-Cache: the adaptive-encoding energy policy (the paper's contribution,
// Section III, Fig. 1).
//
// Attached as an AccessSink to the functional cache, it maintains the per-
// line H&D field (history counters + partition direction bits), runs the
// encoding-direction predictor at every window boundary, defers re-encoding
// through the update FIFOs, and charges every component of the design --
// including its own overheads (widened lines, encoder muxes, predictor
// logic, FIFO traffic, re-encode writes) -- to a categorized ledger.
#pragma once

#include <string>
#include <vector>

#include "cnt/direction_hook.hpp"
#include "cnt/encoding.hpp"
#include "cnt/policy_base.hpp"
#include "cnt/predictor.hpp"
#include "energy/sram_cell.hpp"
#include "cnt/update_queue.hpp"

namespace cnt {

/// Initial encoding direction chosen when a line is filled. The paper
/// leaves the fill policy unspecified. The library default, kByMissType,
/// uses the demand access that caused the fill as a one-shot pattern
/// prediction: a read miss means the line is being consumed (encode for
/// cheap reads); a write miss means a store stream is producing it (encode
/// for cheap writes). Streaming lines evict before the window predictor
/// can act (they see fewer than W accesses), so the fill choice carries
/// most of the benefit there; the window predictor then corrects hot lines
/// whose usage differs from the first touch. The other options exist for
/// the ablation bench (bench_fig_fill_policy).
enum class FillDirectionPolicy : u8 {
  kAsIs,            ///< D = 0: store the line unencoded
  kMinWriteEnergy,  ///< invert partitions that are majority-'1' (cheap fill)
  kReadOptimized,   ///< invert partitions that are majority-'0' (cheap reads)
  kByMissType,      ///< read miss -> kReadOptimized, write miss -> kMinWriteEnergy
};

[[nodiscard]] const char* to_string(FillDirectionPolicy p) noexcept;

/// Where the H (history) counters live. The paper widens every cache line
/// (kPerLine). The kPerSet extension keeps one counter pair per *set*,
/// shared by its ways: the H-field area shrinks by the associativity at
/// the cost of mixing the ways' access patterns (windows fire per set and
/// re-evaluate only the line being accessed at the boundary). The D bits
/// always stay per line. See bench_fig_history_scope for the trade-off.
enum class HistoryScope : u8 { kPerLine, kPerSet };

[[nodiscard]] const char* to_string(HistoryScope s) noexcept;

struct CntConfig {
  usize window = 15;     ///< W; the authors' default ("checkpoint as 15")
  usize partitions = 8;  ///< K direction bits per 64 B line
  usize fifo_depth = 8;  ///< deferred-update FIFO entries
  double delta_t = 0.0;  ///< switch hysteresis margin (0 = paper Algorithm 1)
  FillDirectionPolicy fill_policy = FillDirectionPolicy::kByMissType;
  /// kWord (default) charges a store for the accessed word's columns only
  /// (physical column-mux behaviour); kLine reproduces the paper's Eqs.
  /// (4)/(5) literally. The predictor's threshold table is built with a
  /// matching write weight so decisions stay consistent with accounting.
  WriteGranularity write_granularity = WriteGranularity::kWord;
  HistoryScope history_scope = HistoryScope::kPerLine;  ///< paper: per line
  bool account_metadata = true;   ///< charge H&D bit reads/writes
  bool flip_aware_writes = false; ///< ablation: charge only changed bits
  /// Extension (not in the paper): dynamic zero-line elision. One extra
  /// flag bit per line marks an all-zero line; flagged lines skip the data
  /// array entirely on reads and fills (the flag is authoritative), which
  /// composes naturally with adaptive encoding -- zero lines are exactly
  /// the ones whose raw reads are the CNFET worst case. A write that makes
  /// the line non-zero materializes it with a full-line write.
  bool zero_line_opt = false;
};

struct CntPolicyStats {
  u64 windows_evaluated = 0;
  u64 switch_decisions = 0;          ///< window evals requesting >= 1 flip
  u64 partition_flips_requested = 0;
  u64 reencodes_applied = 0;
  u64 partition_flips_applied = 0;
  u64 skipped_pending = 0;  ///< window fired while a request was in flight
  u64 fill_inversions = 0;  ///< partitions stored inverted at fill time
  u64 zero_fills = 0;       ///< fills elided by the zero-line flag
  u64 zero_reads = 0;       ///< read hits served from the flag alone
  u64 zero_materializations = 0;  ///< writes that un-zeroed a flagged line
};

class CntPolicy final : public EnergyPolicyBase {
 public:
  /// `geom` describes the base array; this policy's H&D width is *added*
  /// to geom.meta_bits (which may already carry protection check bits).
  CntPolicy(std::string name, const TechParams& tech, ArrayGeometry geom,
            const CntConfig& cfg);

  void on_access(const AccessEvent& ev) override;

  /// Route direction-bit storage through a fault hook (not owned; may be
  /// nullptr; FaultCampaign in practice). Masks the policy writes pass
  /// through the hook's stuck cells; masks it reads back may differ --
  /// silent corruption makes the decoder use the flipped mask, inverting
  /// whole partitions' read-out. The policy keeps its logical intent in
  /// LineState.
  void attach_direction_hook(DirectionFaultHook* hook) noexcept {
    dir_hook_ = hook;
  }

  [[nodiscard]] const CntConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const CntPolicyStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const UpdateQueueStats& queue_stats() const noexcept {
    return queue_.stats();
  }
  [[nodiscard]] const Predictor& predictor() const noexcept {
    return predictor_;
  }
  [[nodiscard]] const PartitionScheme& scheme() const noexcept {
    return predictor_.scheme();
  }

  /// H&D field width in bits per line (history counters + direction bits).
  [[nodiscard]] usize meta_bits() const noexcept;

  /// Introspection for tests: current direction mask of a line.
  [[nodiscard]] u64 directions(u32 set, u32 way) const;
  [[nodiscard]] const LineState& line_state(u32 set, u32 way) const;

 private:
  [[nodiscard]] LineState& state(u32 set, u32 way) {
    return states_[static_cast<usize>(set) * ways_ + way];
  }

  void handle_hit(const AccessEvent& ev, bool is_write);
  void handle_fill(const AccessEvent& ev);
  /// Zero-line extension hit path; returns true when the access was fully
  /// handled by the flag (no array involvement).
  bool handle_zero_line(const AccessEvent& ev, LineState& st, bool is_write);
  void run_predictor(const AccessEvent& ev, LineState& st, bool is_write);
  /// Raw '1' counts of every partition of `line`, written to `ones_out`
  /// (one entry per partition). Returns their sum, which equals the whole
  /// line's popcount -- callers use it for the zero-line test so the line
  /// is swept exactly once per fill.
  [[nodiscard]] usize partition_ones_of(std::span<const u8> line,
                                        usize* ones_out) const;
  /// One pass over the precomputed per-partition raw counts that both
  /// picks the fill direction mask (written to `dirs_out`) and prices the
  /// full-line array write under it. The raw count feeds the inversion
  /// decision and the stored-ones count, in partition order, so the energy
  /// sum is bit-identical to pricing the mask in a second pass.
  [[nodiscard]] Energy fill_write_cost(std::span<const usize> raw_ones,
                                       bool write_miss, u64& dirs_out);

  [[nodiscard]] usize stored_dir_ones(u64 directions) const noexcept;
  void charge_meta_read(const HistoryCounters& hist, u64 directions);
  void charge_meta_history_write(const HistoryCounters& hist);
  void charge_meta_full_write(const HistoryCounters& hist, u64 directions);
  void charge_encoder_pass();
  [[nodiscard]] Energy stored_read_cost(std::span<const u8> logical,
                                        u64 dirs) const;
  [[nodiscard]] Energy flip_aware_write_cost(std::span<const u8> before,
                                             std::span<const u8> after,
                                             u64 dirs, usize bit_lo,
                                             usize bit_hi) const;

  void drain(u32 slots);

  /// History counters for this access's line under the configured scope.
  [[nodiscard]] HistoryCounters& history_of(u32 set, LineState& st);

  /// Direction mask the decoder sees for (set, way): the logical mask, or
  /// the campaign's (possibly corrupted, possibly corrected) read-out.
  /// Charges the correction events the metadata read incurs.
  [[nodiscard]] u64 effective_directions(u32 set, u32 way, u64 logical);
  /// Mirror a direction-mask write into the campaign's stored cells.
  void note_directions_written(u32 set, u32 way, u64 dirs);

  CntConfig cfg_;
  Predictor predictor_;
  UpdateQueue queue_;
  DirectionFaultHook* dir_hook_ = nullptr;
  usize ways_;
  std::vector<LineState> states_;
  std::vector<HistoryCounters> set_hist_;  ///< used when kPerSet
  CntPolicyStats stats_;
  usize history_bits_;
  // Fixed-width energy lookup tables (see EnergyByOnes): one partition's
  // bits and one 64-bit dirty word. Every partition/word pricing loop
  // indexes these instead of re-running the per-call formula.
  EnergyByOnes part_energy_;
  EnergyByOnes word_energy_;
  // Same idea for the metadata field: the full H&D record
  // (history_bits_ + partitions wide) and the history counters alone.
  EnergyByOnes meta_energy_;
  EnergyByOnes hist_energy_;

  // Scratch for flip-aware encoding comparisons (mutable: used by the
  // const cost helpers, invisible to callers).
  mutable std::vector<u8> scratch_a_;
  mutable std::vector<u8> scratch_b_;
};

}  // namespace cnt
