#include "cnt/update_queue.hpp"

#include <algorithm>

namespace cnt {

bool UpdateQueue::push(const ReencodeRequest& req) {
  if (!fifo_.push(req)) {
    ++stats_.dropped_full;
    return false;
  }
  ++stats_.pushed;
  stats_.max_occupancy = std::max<u64>(stats_.max_occupancy, fifo_.size());
  return true;
}

std::optional<ReencodeRequest> UpdateQueue::pop() {
  auto req = fifo_.pop();
  if (req) ++stats_.drained;
  return req;
}

}  // namespace cnt
