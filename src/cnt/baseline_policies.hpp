// Comparator policies: the baseline CNFET cache (no encoding), the CMOS
// cache (same class, CMOS parameters), a static always-invert encoder, and
// the unattainable per-access oracle.
#pragma once

#include "cnt/encoding.hpp"
#include "cnt/policy_base.hpp"
#include "energy/sram_cell.hpp"

namespace cnt {

/// Conventional cache: data stored as-is. Instantiate with
/// TechParams::cnfet() for the paper's baseline CNFET cache, or
/// TechParams::cmos() for the CMOS reference.
class PlainPolicy final : public EnergyPolicyBase {
 public:
  PlainPolicy(std::string name, const TechParams& tech,
              const ArrayGeometry& geom,
              WriteGranularity wg = WriteGranularity::kWord)
      : EnergyPolicyBase(std::move(name), tech, geom, wg),
        line_energy_(tech.cell, geom.line_bytes * 8),
        word_energy_(tech.cell, 64) {}

  void on_access(const AccessEvent& ev) override;

 private:
  // Fixed-width energy lookup tables (see EnergyByOnes): the full line
  // (hits and fills) and one 64-bit dirty word (writeback pricing).
  EnergyByOnes line_energy_;
  EnergyByOnes word_energy_;
};

/// Static whole-line inversion: every line is stored complemented. Needs no
/// per-line metadata (the direction is global) but pays the encoder
/// data-path energy. Wins only when workload data is biased the right way
/// for the access mix -- the strawman that motivates *adaptive* encoding.
class StaticInvertPolicy final : public EnergyPolicyBase {
 public:
  StaticInvertPolicy(std::string name, const TechParams& tech,
                     const ArrayGeometry& geom,
                     WriteGranularity wg = WriteGranularity::kWord)
      : EnergyPolicyBase(std::move(name), tech, geom, wg) {}

  void on_access(const AccessEvent& ev) override;
};

/// Unattainable upper bound: every individual access magically uses the
/// cheaper of {raw, inverted} per partition, with zero switch, metadata,
/// or logic overhead. No real encoding scheme can beat it; CNT-Cache's
/// quality is measured as the fraction of this bound it captures.
class IdealPolicy final : public EnergyPolicyBase {
 public:
  IdealPolicy(std::string name, const TechParams& tech,
              const ArrayGeometry& geom, usize partitions,
              WriteGranularity wg = WriteGranularity::kWord);

  void on_access(const AccessEvent& ev) override;

 private:
  [[nodiscard]] Energy best_read(std::span<const u8> line) const;
  /// Cheapest possible write of the bit range [lo, hi), choosing the better
  /// of raw/inverted independently per overlapped partition.
  [[nodiscard]] Energy best_write(std::span<const u8> line, usize bit_lo,
                                  usize bit_hi) const;

  PartitionScheme scheme_;
};

}  // namespace cnt
