// Partitioned cache-line encoding (paper Section III.B, Fig. 2).
//
// A line of L bits is split into K equal partitions; each partition p has a
// direction bit D[p]. When D[p] = 1 the partition is stored bitwise
// inverted. The hardware encoder is "a series of inverters with 2-to-1
// multiplexers" selected by the direction bits; here we provide the
// bit-exact functional equivalent plus the popcount helpers the predictor
// and the energy model need.
//
// Direction bits are packed LSB-first into a u64 mask (K <= 64).
//
// The per-partition popcount and the encode/re-encode kernels are defined
// inline: every simulated access popcounts several partitions (stored read
// and write costs, fill-direction choice, window evaluations), and the
// partition constraint (K divides the line into byte-aligned partitions)
// makes whole partitions coverable by unaligned 64-bit loads whenever the
// partition width is a multiple of 64 bits -- the common geometries (64 B
// line, K <= 8) take that word-packed path.
#pragma once

#include <cassert>
#include <cstring>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace cnt {

/// Static description of a line's partitioning.
class PartitionScheme {
 public:
  /// Precondition: K >= 1, K <= 64, and K divides line_bytes*8 into
  /// byte-aligned partitions (L/K % 8 == 0) so the hardware mux boundaries
  /// fall on byte lanes.
  PartitionScheme(usize line_bytes, usize partitions);

  [[nodiscard]] usize partitions() const noexcept { return k_; }
  [[nodiscard]] usize line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] usize line_bits() const noexcept { return line_bytes_ * 8; }
  [[nodiscard]] usize partition_bits() const noexcept { return part_bits_; }
  [[nodiscard]] usize partition_bytes() const noexcept {
    return part_bits_ / 8;
  }

  /// Bit range [begin, end) of partition p.
  [[nodiscard]] usize bit_begin(usize p) const noexcept {
    return p * part_bits_;
  }
  [[nodiscard]] usize bit_end(usize p) const noexcept {
    return (p + 1) * part_bits_;
  }

 private:
  usize line_bytes_;
  usize k_;
  usize part_bits_;
};

namespace detail {

/// '1' count of partition p of `data` as stored raw (direction bit 0).
// cnt-hot
[[nodiscard]] inline usize partition_raw_ones(const PartitionScheme& ps,
                                              const u8* data,
                                              usize p) noexcept {
  const usize pb = ps.partition_bytes();
  const u8* q = data + p * pb;
  if (pb % 8 == 0) {
    usize total = 0;
    for (usize i = 0; i < pb; i += 8) {
      total += static_cast<usize>(std::popcount(load_u64(q + i)));
    }
    return total;
  }
  return cnt::popcount(std::span<const u8>(q, pb));
}

/// XOR-invert partition p of `line` in place.
// cnt-hot
inline void invert_partition(const PartitionScheme& ps, u8* line,
                             usize p) noexcept {
  const usize pb = ps.partition_bytes();
  u8* q = line + p * pb;
  if (pb % 8 == 0) {
    for (usize i = 0; i < pb; i += 8) {
      const u64 w = ~load_u64(q + i);
      std::memcpy(q + i, &w, 8);
    }
    return;
  }
  cnt::invert(std::span<u8>(q, pb));
}

}  // namespace detail

/// Apply the encoding: copy `logical` into `out`, inverting every partition
/// whose direction bit is set. Involutive: encode(encode(x, D), D) == x,
/// so the same function decodes.
// cnt-hot
inline void encode_line(const PartitionScheme& ps, std::span<const u8> logical,
                        u64 directions, std::span<u8> out) {
  assert(logical.size() == ps.line_bytes());
  assert(out.size() == ps.line_bytes());
  std::memcpy(out.data(), logical.data(), logical.size());
  for (u64 m = directions & (ps.partitions() >= 64
                                 ? ~u64{0}
                                 : (u64{1} << ps.partitions()) - 1);
       m != 0; m &= m - 1) {
    detail::invert_partition(ps, out.data(),
                             static_cast<usize>(std::countr_zero(m)));
  }
}

/// Convenience allocating form.
[[nodiscard]] std::vector<u8> encode_line(const PartitionScheme& ps,
                                          std::span<const u8> logical,
                                          u64 directions);

/// In-place re-encode from `old_dirs` to `new_dirs`: inverts exactly the
/// partitions whose direction changed (what the deferred-update write does).
// cnt-hot
inline void reencode_line(const PartitionScheme& ps, std::span<u8> stored,
                          u64 old_dirs, u64 new_dirs) {
  assert(stored.size() == ps.line_bytes());
  const u64 mask = ps.partitions() >= 64 ? ~u64{0}
                                         : (u64{1} << ps.partitions()) - 1;
  for (u64 m = (old_dirs ^ new_dirs) & mask; m != 0; m &= m - 1) {
    detail::invert_partition(ps, stored.data(),
                             static_cast<usize>(std::countr_zero(m)));
  }
}

/// Number of '1' bits partition p of `data` would have when stored with
/// direction bit `inverted`.
// cnt-hot
[[nodiscard]] inline usize stored_partition_ones(const PartitionScheme& ps,
                                                 std::span<const u8> data,
                                                 usize p,
                                                 bool inverted) noexcept {
  assert(p < ps.partitions());
  const usize raw = detail::partition_raw_ones(ps, data.data(), p);
  return inverted ? ps.partition_bits() - raw : raw;
}

/// Total '1' bits of the full stored image of `logical` under `directions`,
/// without materializing the encoded bytes.
// cnt-hot
[[nodiscard]] inline usize stored_ones(const PartitionScheme& ps,
                                       std::span<const u8> logical,
                                       u64 directions) noexcept {
  usize total = 0;
  for (usize p = 0; p < ps.partitions(); ++p) {
    total += stored_partition_ones(ps, logical, p, (directions >> p) & 1u);
  }
  return total;
}

/// '1' bits of the stored image restricted to the bit range
/// [bit_begin, bit_end) -- used for word-granular write accounting, where
/// only the accessed word's columns are driven.
// cnt-hot
[[nodiscard]] inline usize stored_ones_range(const PartitionScheme& ps,
                                             std::span<const u8> logical,
                                             u64 directions, usize bit_begin,
                                             usize bit_end) noexcept {
  assert(bit_begin <= bit_end);
  assert(bit_end <= ps.line_bits());
  usize total = 0;
  const usize first_p = bit_begin / ps.partition_bits();
  const usize last_p =
      bit_begin == bit_end ? first_p
                           : (bit_end - 1) / ps.partition_bits() + 1;
  for (usize p = first_p; p < last_p; ++p) {
    const usize lo = bit_begin > ps.bit_begin(p) ? bit_begin : ps.bit_begin(p);
    const usize hi = bit_end < ps.bit_end(p) ? bit_end : ps.bit_end(p);
    if (lo >= hi) continue;
    const usize raw = popcount_range(logical, lo, hi);
    total += ((directions >> p) & 1u) ? (hi - lo) - raw : raw;
  }
  return total;
}

/// Per-partition '1' counts of the raw (unencoded) data.
[[nodiscard]] std::vector<usize> partition_ones(const PartitionScheme& ps,
                                                std::span<const u8> data);

}  // namespace cnt
