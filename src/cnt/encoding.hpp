// Partitioned cache-line encoding (paper Section III.B, Fig. 2).
//
// A line of L bits is split into K equal partitions; each partition p has a
// direction bit D[p]. When D[p] = 1 the partition is stored bitwise
// inverted. The hardware encoder is "a series of inverters with 2-to-1
// multiplexers" selected by the direction bits; here we provide the
// bit-exact functional equivalent plus the popcount helpers the predictor
// and the energy model need.
//
// Direction bits are packed LSB-first into a u64 mask (K <= 64).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace cnt {

/// Static description of a line's partitioning.
class PartitionScheme {
 public:
  /// Precondition: K >= 1, K <= 64, and K divides line_bytes*8 into
  /// byte-aligned partitions (L/K % 8 == 0) so the hardware mux boundaries
  /// fall on byte lanes.
  PartitionScheme(usize line_bytes, usize partitions);

  [[nodiscard]] usize partitions() const noexcept { return k_; }
  [[nodiscard]] usize line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] usize line_bits() const noexcept { return line_bytes_ * 8; }
  [[nodiscard]] usize partition_bits() const noexcept { return part_bits_; }
  [[nodiscard]] usize partition_bytes() const noexcept {
    return part_bits_ / 8;
  }

  /// Bit range [begin, end) of partition p.
  [[nodiscard]] usize bit_begin(usize p) const noexcept {
    return p * part_bits_;
  }
  [[nodiscard]] usize bit_end(usize p) const noexcept {
    return (p + 1) * part_bits_;
  }

 private:
  usize line_bytes_;
  usize k_;
  usize part_bits_;
};

/// Apply the encoding: copy `logical` into `out`, inverting every partition
/// whose direction bit is set. Involutive: encode(encode(x, D), D) == x,
/// so the same function decodes.
void encode_line(const PartitionScheme& ps, std::span<const u8> logical,
                 u64 directions, std::span<u8> out);

/// Convenience allocating form.
[[nodiscard]] std::vector<u8> encode_line(const PartitionScheme& ps,
                                          std::span<const u8> logical,
                                          u64 directions);

/// In-place re-encode from `old_dirs` to `new_dirs`: inverts exactly the
/// partitions whose direction changed (what the deferred-update write does).
void reencode_line(const PartitionScheme& ps, std::span<u8> stored,
                   u64 old_dirs, u64 new_dirs);

/// Number of '1' bits partition p of `data` would have when stored with
/// direction bit `inverted`.
[[nodiscard]] usize stored_partition_ones(const PartitionScheme& ps,
                                          std::span<const u8> data, usize p,
                                          bool inverted);

/// Total '1' bits of the full stored image of `logical` under `directions`,
/// without materializing the encoded bytes.
[[nodiscard]] usize stored_ones(const PartitionScheme& ps,
                                std::span<const u8> logical, u64 directions);

/// '1' bits of the stored image restricted to the bit range
/// [bit_begin, bit_end) -- used for word-granular write accounting, where
/// only the accessed word's columns are driven.
[[nodiscard]] usize stored_ones_range(const PartitionScheme& ps,
                                      std::span<const u8> logical,
                                      u64 directions, usize bit_begin,
                                      usize bit_end);

/// Per-partition '1' counts of the raw (unencoded) data.
[[nodiscard]] std::vector<usize> partition_ones(const PartitionScheme& ps,
                                                std::span<const u8> data);

}  // namespace cnt
