#include "cnt/baseline_policies.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "energy/sram_cell.hpp"

namespace cnt {

void PlainPolicy::on_access(const AccessEvent& ev) {
  charge_decode();
  charge_tag_lookup(ev);
  charge_ecc(ev);

  switch (ev.kind) {
    case AccessKind::kReadHit:
      ledger_.charge(EnergyCategory::kDataRead,
                     line_energy_.read(popcount(ev.line_after)));
      charge_output(transfer_bits(ev));
      break;

    case AccessKind::kWriteHit: {
      const auto [lo, hi] = written_bit_range(ev);
      ledger_.charge(EnergyCategory::kDataWrite,
                     write_energy_counts(tech_.cell, hi - lo,
                                         popcount_range(ev.line_after, lo,
                                                        hi)));
      charge_output(transfer_bits(ev));
      break;
    }

    case AccessKind::kReadMissFill:
    case AccessKind::kWriteMissFill: {
      if (ev.evicted_valid && ev.evicted_dirty) {
        // Writeback: a second array operation reads the victim's dirty
        // words out (all words unless sectored writebacks are on).
        charge_decode();
        Energy rd{};
        usize dirty_bits = 0;
        for_each_dirty_word(ev, [&](usize lo, usize hi) {
          rd += word_energy_.read(popcount_range(ev.line_before, lo, hi));
          dirty_bits += hi - lo;
        });
        ledger_.charge(EnergyCategory::kDataRead, rd);
        charge_output(dirty_bits);
      }
      // Fill write (a second/third array operation).
      charge_decode();
      ledger_.charge(EnergyCategory::kDataWrite,
                     line_energy_.write(popcount(ev.line_after)));
      charge_tag_write(ev);
      charge_output(array_.geometry().line_bits());
      break;
    }

    case AccessKind::kWriteAround:
      // The word bypasses this array; only the (missing) lookup was paid.
      break;
  }
}

void StaticInvertPolicy::on_access(const AccessEvent& ev) {
  charge_decode();
  charge_tag_lookup(ev);
  charge_ecc(ev);

  const usize line_bits = array_.geometry().line_bits();
  const auto& cell = tech_.cell;
  // Stored image is the complement: stored ones = L - logical ones.
  const auto inv_ones = [&](std::span<const u8> line) {
    return line_bits - popcount(line);
  };

  switch (ev.kind) {
    case AccessKind::kReadHit:
      ledger_.charge(EnergyCategory::kDataRead,
                     read_energy_counts(cell, line_bits, inv_ones(ev.line_after)));
      ledger_.charge(EnergyCategory::kEncoderLogic,
                     static_cast<double>(line_bits) *
                         tech_.periph.encoder_per_bit);
      charge_output(transfer_bits(ev));
      break;

    case AccessKind::kWriteHit: {
      const auto [lo, hi] = written_bit_range(ev);
      const usize ones = (hi - lo) - popcount_range(ev.line_after, lo, hi);
      ledger_.charge(EnergyCategory::kDataWrite,
                     write_energy_counts(cell, hi - lo, ones));
      ledger_.charge(EnergyCategory::kEncoderLogic,
                     static_cast<double>(line_bits) *
                         tech_.periph.encoder_per_bit);
      charge_output(transfer_bits(ev));
      break;
    }

    case AccessKind::kReadMissFill:
    case AccessKind::kWriteMissFill: {
      if (ev.evicted_valid && ev.evicted_dirty) {
        charge_decode();
        Energy rd{};
        usize dirty_bits = 0;
        for_each_dirty_word(ev, [&](usize lo, usize hi) {
          const usize ones =
              (hi - lo) - popcount_range(ev.line_before, lo, hi);
          rd += read_energy_counts(cell, hi - lo, ones);
          dirty_bits += hi - lo;
        });
        ledger_.charge(EnergyCategory::kDataRead, rd);
        ledger_.charge(EnergyCategory::kEncoderLogic,
                       static_cast<double>(dirty_bits) *
                           tech_.periph.encoder_per_bit);
        charge_output(dirty_bits);
      }
      charge_decode();
      ledger_.charge(EnergyCategory::kDataWrite,
                     write_energy_counts(cell, line_bits,
                                         inv_ones(ev.line_after)));
      ledger_.charge(EnergyCategory::kEncoderLogic,
                     static_cast<double>(line_bits) *
                         tech_.periph.encoder_per_bit);
      charge_tag_write(ev);
      charge_output(line_bits);
      break;
    }

    case AccessKind::kWriteAround:
      break;
  }
}

IdealPolicy::IdealPolicy(std::string name, const TechParams& tech,
                         const ArrayGeometry& geom, usize partitions,
                         WriteGranularity wg)
    : EnergyPolicyBase(std::move(name), tech, geom, wg),
      scheme_(geom.line_bytes, partitions) {}

Energy IdealPolicy::best_read(std::span<const u8> line) const {
  Energy total{};
  const usize pb = scheme_.partition_bits();
  for (usize p = 0; p < scheme_.partitions(); ++p) {
    const usize ones = stored_partition_ones(scheme_, line, p, false);
    total += std::min(read_energy_counts(tech_.cell, pb, ones),
                      read_energy_counts(tech_.cell, pb, pb - ones));
  }
  return total;
}

Energy IdealPolicy::best_write(std::span<const u8> line, usize bit_lo,
                               usize bit_hi) const {
  Energy total{};
  for (usize p = 0; p < scheme_.partitions(); ++p) {
    const usize lo = std::max(bit_lo, scheme_.bit_begin(p));
    const usize hi = std::min(bit_hi, scheme_.bit_end(p));
    if (lo >= hi) continue;
    const usize width = hi - lo;
    const usize ones = popcount_range(line, lo, hi);
    total += std::min(write_energy_counts(tech_.cell, width, ones),
                      write_energy_counts(tech_.cell, width, width - ones));
  }
  return total;
}

void IdealPolicy::on_access(const AccessEvent& ev) {
  charge_decode();
  charge_tag_lookup(ev);
  charge_ecc(ev);

  switch (ev.kind) {
    case AccessKind::kReadHit:
      ledger_.charge(EnergyCategory::kDataRead, best_read(ev.line_after));
      charge_output(transfer_bits(ev));
      break;

    case AccessKind::kWriteHit: {
      const auto [lo, hi] = written_bit_range(ev);
      ledger_.charge(EnergyCategory::kDataWrite,
                     best_write(ev.line_after, lo, hi));
      charge_output(transfer_bits(ev));
      break;
    }

    case AccessKind::kReadMissFill:
    case AccessKind::kWriteMissFill: {
      if (ev.evicted_valid && ev.evicted_dirty) {
        charge_decode();
        Energy rd{};
        usize dirty_bits = 0;
        for_each_dirty_word(ev, [&](usize lo, usize hi) {
          const usize width = hi - lo;
          const usize ones = popcount_range(ev.line_before, lo, hi);
          rd += std::min(read_energy_counts(tech_.cell, width, ones),
                         read_energy_counts(tech_.cell, width, width - ones));
          dirty_bits += width;
        });
        ledger_.charge(EnergyCategory::kDataRead, rd);
        charge_output(dirty_bits);
      }
      charge_decode();
      ledger_.charge(EnergyCategory::kDataWrite,
                     best_write(ev.line_after, 0,
                                array_.geometry().line_bits()));
      charge_tag_write(ev);
      charge_output(array_.geometry().line_bits());
      break;
    }

    case AccessKind::kWriteAround:
      break;
  }
}

}  // namespace cnt
