// Direction-bit fault domain, as seen from the encoding policy.
//
// CntPolicy consults this interface on every decode so a corrupted
// direction bit really is decoded with the flipped mask (the whole
// partition reads back inverted unless the protection scheme catches
// it). The concrete implementation is FaultCampaign in src/fault --
// which sits *above* src/cnt in the include DAG (docs/static_analysis.md,
// rule R8) -- so the policy talks to the campaign through this interface
// and never includes fault headers.
#pragma once

#include "common/access_event.hpp"
#include "common/types.hpp"

namespace cnt {

class DirectionFaultHook {
 public:
  virtual ~DirectionFaultHook() = default;

  /// Result of one direction-field read.
  struct DirRead {
    u64 effective = 0;       ///< mask the decoder actually uses
    LineFaultReport report;  ///< outcome tally for this metadata read
  };

  /// Record the mask the encoder wrote; stuck direction cells absorb it
  /// immediately (the stored mask may differ from the written one).
  virtual void write_directions(u32 set, u32 way, u64 dirs) = 0;

  /// Read the direction field: sample transient flips, compare the stored
  /// mask against the written one, classify under the protection scheme.
  /// Silent outcomes return the corrupted mask (decode with the flipped
  /// mask); corrected/detected outcomes return the written mask.
  [[nodiscard]] virtual DirRead read_directions(u32 set, u32 way) = 0;
};

}  // namespace cnt
