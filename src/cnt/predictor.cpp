#include "cnt/predictor.hpp"

#include <cassert>

#include "common/bits.hpp"

namespace cnt {

Predictor::Predictor(const BitEnergies& cell, PartitionScheme scheme,
                     usize window, double delta_t, double write_weight)
    : scheme_(scheme),
      table_(cell, window, scheme.partition_bits(), delta_t, write_weight),
      window_(window),
      history_bits_(2 * bits_to_hold(window - 1)) {
  assert(window >= 1);
}

PredictorDecision Predictor::on_access(HistoryCounters& hist, u64 directions,
                                       bool is_write,
                                       std::span<const u8> logical) const {
  PredictorDecision d;
  ++hist.a_num;
  if (is_write) ++hist.wr_num;
  if (hist.a_num < window_) return d;

  // Window boundary.
  d.window_completed = true;
  const usize wr_num = hist.wr_num;
  d.write_intensive = table_.is_write_intensive(wr_num);
  d.new_directions = directions;

  for (usize p = 0; p < scheme_.partitions(); ++p) {
    const bool dir = (directions >> p) & 1u;
    const usize ones = stored_partition_ones(scheme_, logical, p, dir);
    if (table_.should_switch(wr_num, ones)) {
      d.new_directions ^= (1ULL << p);
      ++d.partitions_flipped;
    }
  }
  d.switch_requested = d.partitions_flipped > 0;

  hist.a_num = 0;
  hist.wr_num = 0;
  return d;
}

}  // namespace cnt
