// Deferred re-encoding queue (paper Section III.A).
//
// "To avoid affecting the cache write data path, a data FIFO is used to
// delay the update until there is an idle time slot. Meanwhile, an index
// FIFO is also needed to decide the update cache line address
// synchronously." We model the pair as one bounded queue of re-encode
// requests; the energy adapter charges the data-FIFO traffic (line bytes in
// and out) and the index-FIFO traffic per request.
//
// When the FIFO is full, a new decision is dropped (the line simply keeps
// its current encoding until a later window re-evaluates it) -- the
// conservative hardware behaviour, counted in the stats.
#pragma once

#include <optional>

#include "common/fixed_queue.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace cnt {

struct ReencodeRequest {
  u32 set = 0;
  u32 way = 0;
  u64 new_directions = 0;
  u32 generation = 0;  ///< line generation at decision time (stale guard)
  /// The data FIFO holds the re-encoded line captured at decision time;
  /// this is the E_encode write cost of committing it, plus flip count.
  Energy write_cost{};
  u32 partitions_flipped = 0;
};

struct UpdateQueueStats {
  u64 pushed = 0;
  u64 dropped_full = 0;
  u64 drained = 0;
  u64 drained_stale = 0;  ///< popped but line was refilled in the meantime
  u64 max_occupancy = 0;
};

class UpdateQueue {
 public:
  explicit UpdateQueue(usize depth) : fifo_(depth) {}

  /// Returns false when the FIFO was full and the request dropped.
  bool push(const ReencodeRequest& req);

  /// Pop the oldest request, if any. The caller validates generation and
  /// reports staleness back via note_stale().
  [[nodiscard]] std::optional<ReencodeRequest> pop();
  void note_stale() noexcept { ++stats_.drained_stale; }

  [[nodiscard]] bool empty() const noexcept { return fifo_.empty(); }
  [[nodiscard]] usize size() const noexcept { return fifo_.size(); }
  [[nodiscard]] usize depth() const noexcept { return fifo_.capacity(); }
  [[nodiscard]] const UpdateQueueStats& stats() const noexcept {
    return stats_;
  }

 private:
  FixedQueue<ReencodeRequest> fifo_;
  UpdateQueueStats stats_;
};

}  // namespace cnt
