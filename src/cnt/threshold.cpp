#include "cnt/threshold.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "energy/sram_cell.hpp"

namespace cnt {

ThresholdTable::ThresholdTable(const BitEnergies& e, usize window,
                               usize unit_bits, double delta_t,
                               double write_weight)
    : e_(e),
      w_(window),
      l_(unit_bits),
      delta_t_(delta_t),
      write_weight_(write_weight) {
  assert(window >= 1);
  assert(unit_bits >= 1);
  assert(delta_t >= 0.0);
  assert(write_weight > 0.0);

  const double drd = e_.read_delta().in_joules();
  const double dwr = e_.write_delta().in_joules();
  // Eq. (3). For value-symmetric cells (dwr == 0, e.g. CMOS) the breakeven
  // degenerates; report W/2 and let the per-entry decisions (which use the
  // exact profit sign) handle it.
  const double wdwr = write_weight_ * dwr;
  th_rd_ = (drd + wdwr) <= 0.0
               ? static_cast<double>(w_) / 2.0
               : static_cast<double>(w_) * wdwr / (drd + wdwr);

  // Precompute one entry per possible write count, exactly as the paper's
  // hardware table would be burned in. The Eq. (6) breakeven is clamped to
  // "never switch" in the degenerate windows where the profit function's
  // slope disagrees with the comparison direction (see threshold.hpp).
  table_.resize(w_ + 1);
  for (usize wr = 0; wr <= w_; ++wr) {
    const double g = e_save(wr).in_joules();  // per-bit window gain
    Entry& entry = table_[wr];
    entry.write_intensive = g < 0.0;
    const double denom = 2.0 * g - dwr;
    const double lbits = static_cast<double>(l_);
    const double ewr1 = e_.wr1.in_joules();
    if (g > 0.0) {
      // Read-intensive: switch iff N1 < breakeven, valid only while the
      // profit decreases with N1 (denom > 0); otherwise never profitable.
      entry.breakeven =
          denom > 0.0 ? lbits * (g - ewr1) / denom : -1.0;
    } else if (g < 0.0) {
      // Write-intensive: switch iff N1 > breakeven (denom < 0 always here).
      entry.breakeven = lbits * (g - ewr1) / denom;
    } else {
      // Balanced window: any switch costs E_encode for zero gain.
      entry.breakeven = -1.0;
    }
  }
}

bool ThresholdTable::is_write_intensive(usize wr_num) const noexcept {
  assert(wr_num <= w_);
  return table_[wr_num].write_intensive;
}

double ThresholdTable::threshold(usize wr_num) const {
  assert(wr_num <= w_);
  return table_[wr_num].breakeven;
}

bool ThresholdTable::should_switch(usize wr_num, usize bit1num) const {
  assert(wr_num <= w_);
  assert(bit1num <= l_);
  if (delta_t_ == 0.0) {
    const Entry& entry = table_[wr_num];
    const double n1 = static_cast<double>(bit1num);
    return entry.write_intensive ? n1 > entry.breakeven
                                 : n1 < entry.breakeven;
  }
  // Hysteresis path: direct profit test with relative margin.
  const Energy cur = window_energy(wr_num, bit1num);
  const Energy alt = window_energy_switched(wr_num, bit1num);
  const Energy profit = cur - alt - encode_cost(bit1num);
  return profit.in_joules() > delta_t_ * cur.in_joules();
}

Energy ThresholdTable::window_energy(usize wr_num, usize bit1num) const {
  assert(wr_num <= w_);
  assert(bit1num <= l_);
  const auto reads = static_cast<double>(w_ - wr_num);
  const double writes = static_cast<double>(wr_num) * write_weight_;
  return reads * read_energy_counts(e_, l_, bit1num) +
         writes * write_energy_counts(e_, l_, bit1num);
}

Energy ThresholdTable::window_energy_switched(usize wr_num,
                                              usize bit1num) const {
  return window_energy(wr_num, l_ - bit1num);
}

Energy ThresholdTable::encode_cost(usize bit1num) const {
  assert(bit1num <= l_);
  // Writing the inverted data back: the re-encoded unit holds L - N1 ones.
  return write_energy_counts(e_, l_, l_ - bit1num);
}

Energy ThresholdTable::e_save(usize wr_num) const {
  assert(wr_num <= w_);
  const auto reads = static_cast<double>(w_ - wr_num);
  const double writes = static_cast<double>(wr_num) * write_weight_;
  return reads * e_.read_delta() - writes * e_.write_delta();
}

}  // namespace cnt
