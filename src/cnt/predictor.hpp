// Encoding-direction predictor (paper Algorithm 1).
//
// Per-line history: an access counter A_num and a write counter Wr_num,
// stored in the widened cache line ("H" of the H&D field). Every W-th
// access to a line closes a window: step 1 classifies the line read- vs
// write-intensive from Wr_num; step 2 popcounts the *stored* data per
// partition and consults the precomputed threshold table (Eq. 6) to decide
// whether each partition's direction bit should flip. Counters then reset.
//
// The predictor is deliberately a pure decision engine: it mutates only the
// LineState history/direction fields handed to it and never touches the
// cache or the energy ledger (the policy adapter owns those).
#pragma once

#include <span>

#include "cnt/encoding.hpp"
#include "cnt/threshold.hpp"
#include "common/types.hpp"

namespace cnt {

/// The H (history) field: the window's access counters. Stored per line
/// in the paper's design; the per-set sharing extension keeps one copy per
/// set instead (see CntConfig::history_scope).
struct HistoryCounters {
  u16 a_num = 0;   ///< accesses in the current window
  u16 wr_num = 0;  ///< writes in the current window
};

/// Per-line CNT-Cache state: the H&D field plus simulation bookkeeping.
struct LineState {
  HistoryCounters hist;
  u64 directions = 0;   ///< partition direction bits (D field)
  u32 generation = 0;   ///< bumped on fill; guards stale FIFO entries
  bool pending = false; ///< a re-encode request is queued for this line
  bool zero_flag = false;  ///< zero-line elision flag (extension; see
                           ///< CntConfig::zero_line_opt)
  bool write_filled = false;  ///< the line was brought in by a write miss
                              ///< (drives re-materialization encoding)
};

struct PredictorDecision {
  bool window_completed = false;
  bool write_intensive = false;
  bool switch_requested = false;  ///< at least one partition should flip
  u64 new_directions = 0;         ///< valid when window_completed
  u32 partitions_flipped = 0;
};

class Predictor {
 public:
  Predictor(const BitEnergies& cell, PartitionScheme scheme, usize window,
            double delta_t = 0.0, double write_weight = 1.0);

  /// Record one access to a line holding logical data `logical` (the
  /// post-access contents) stored under `directions`. On a window
  /// boundary, evaluates every partition's stored image and returns the
  /// decision; the caller applies direction changes via its deferred-update
  /// queue. Counters are reset at the boundary per Algorithm 1.
  [[nodiscard]] PredictorDecision on_access(HistoryCounters& hist,
                                            u64 directions,
                              bool is_write,
                              std::span<const u8> logical) const;

  /// Convenience overload for per-line history (the paper's design).
  [[nodiscard]] PredictorDecision on_access(LineState& state,
                                            bool is_write,
                              std::span<const u8> logical) const {
    return on_access(state.hist, state.directions, is_write, logical);
  }

  [[nodiscard]] const ThresholdTable& table() const noexcept { return table_; }
  [[nodiscard]] const PartitionScheme& scheme() const noexcept {
    return scheme_;
  }
  [[nodiscard]] usize window() const noexcept { return window_; }

  /// Width of the H (history) field in bits: two counters of
  /// ceil(log2(W)) bits each, as the paper specifies.
  [[nodiscard]] usize history_bits() const noexcept { return history_bits_; }

 private:
  PartitionScheme scheme_;
  ThresholdTable table_;
  usize window_;
  usize history_bits_;
};

}  // namespace cnt
