// Categorized energy accounting for one simulated cache.
//
// Every joule charged during simulation lands in exactly one category, so
// experiment reports can show both totals (the paper's headline metric is
// total dynamic energy) and breakdowns (array vs. encoding-logic vs.
// re-encode switch overhead -- experiment E7 in DESIGN.md).
#pragma once

#include <array>
#include <string_view>

#include "common/types.hpp"
#include "common/units.hpp"

namespace cnt {

enum class EnergyCategory : u8 {
  kDataRead,       ///< data-array column reads (bit-pattern dependent)
  kDataWrite,      ///< data-array column writes
  kTagRead,        ///< tag-array reads + comparators
  kTagWrite,       ///< tag-array writes (fills)
  kDecode,         ///< row decode + wordline
  kOutput,         ///< IO drivers
  kMetaRead,       ///< H&D field reads (CNT-Cache only)
  kMetaWrite,      ///< H&D field writes (CNT-Cache only)
  kEncoderLogic,   ///< inverter+mux data-path overhead
  kPredictorLogic, ///< counter updates + window-boundary evaluations
  kReencode,       ///< deferred re-encoding line rewrites (E_encode)
  kFifo,           ///< deferred-update FIFO traffic
  kEccStorage,     ///< check-bit column reads/writes (parity/SECDED)
  kEccLogic,       ///< syndrome computation + correction events
  kCount
};

[[nodiscard]] std::string_view to_string(EnergyCategory c) noexcept;

class EnergyLedger {
 public:
  void charge(EnergyCategory c, Energy e) noexcept {
    entries_[static_cast<usize>(c)] += e;
    ++counts_[static_cast<usize>(c)];
  }

  [[nodiscard]] Energy total() const noexcept;
  [[nodiscard]] Energy get(EnergyCategory c) const noexcept {
    return entries_[static_cast<usize>(c)];
  }
  [[nodiscard]] u64 count(EnergyCategory c) const noexcept {
    return counts_[static_cast<usize>(c)];
  }

  /// Sum of the categories that exist in a conventional cache (array +
  /// peripherals, and ECC protection when enabled), i.e. everything except
  /// the CNT-Cache additions.
  [[nodiscard]] Energy array_total() const noexcept;

  /// Sum of the CNT-Cache-specific overhead categories (meta, encoder,
  /// predictor, re-encode, FIFO).
  [[nodiscard]] Energy overhead_total() const noexcept;

  void merge(const EnergyLedger& other) noexcept;
  void reset() noexcept;

 private:
  std::array<Energy, static_cast<usize>(EnergyCategory::kCount)> entries_{};
  std::array<u64, static_cast<usize>(EnergyCategory::kCount)> counts_{};
};

}  // namespace cnt
