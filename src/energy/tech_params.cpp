#include "energy/tech_params.hpp"

namespace cnt {

TechParams TechParams::cnfet() {
  TechParams t;
  t.name = "CNFET-16";
  t.cell = BitEnergies{
      .rd0 = fJ(2.38),
      .rd1 = fJ(0.35),
      .wr0 = fJ(0.26),
      .wr1 = fJ(2.51),
  };
  // CNFET peripheral logic benefits from the same drive-current advantage
  // as the cell array; defaults in PeripheralParams are already CNFET-class.
  t.periph = PeripheralParams{};
  t.clock_ghz = 2.8;
  return t;
}

TechParams TechParams::cmos() {
  TechParams t;
  t.name = "CMOS-16";
  // Differential 6T CMOS SRAM: read energy is dominated by the bitline pair
  // (one side always discharges), so it is value-independent to first
  // order; writes differ only marginally with the written value.
  t.cell = BitEnergies{
      .rd0 = fJ(4.20),
      .rd1 = fJ(4.20),
      .wr0 = fJ(4.75),
      .wr1 = fJ(4.90),
  };
  PeripheralParams p;
  p.decoder_per_addr_bit = fJ(3.6);
  p.wordline_per_cell = fJ(0.09);
  p.tag_compare_per_bit = fJ(0.10);
  p.output_per_bit = fJ(0.22);
  p.encoder_per_bit = fJ(0.036);
  p.predictor_update = fJ(6.0);
  p.predictor_eval_per_bit = fJ(0.02);
  p.fifo_per_byte = fJ(0.8);
  p.leakage_per_cell_w = 9.0e-12;
  t.periph = p;
  t.clock_ghz = 2.0;
  return t;
}

}  // namespace cnt
