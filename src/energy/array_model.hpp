// CACTI-lite analytical array model.
//
// CACTI-style tools decompose a cache access into decoder, wordline,
// bitline/cell, sense, tag, and output components. We keep that
// decomposition but at first order: the data-dependent column energy
// (cell + bitline + sense/write driver) is the BitEnergies table, and this
// model supplies the data-independent peripheral components plus tag-array
// accounting, leakage, and a coarse area estimate.
//
// Access policy is *serial* tag-then-data (common for energy-optimized L1s
// and matching the paper's accounting, which charges the data array for
// exactly one line per access): every lookup reads all ways' tags; only the
// matching way's data columns are then accessed.
#pragma once

#include <cassert>

#include "common/types.hpp"
#include "common/units.hpp"
#include "energy/sram_cell.hpp"
#include "energy/tech_params.hpp"

namespace cnt {

/// Physical organization of one cache array, as seen by the energy model.
struct ArrayGeometry {
  usize sets = 64;             ///< number of sets (power of two)
  usize ways = 4;              ///< associativity
  usize line_bytes = 64;       ///< data bytes per line
  usize tag_bits = 20;         ///< stored tag width per line
  usize meta_bits = 0;         ///< extra per-line bits (CNT-Cache H&D field)
  usize state_bits = 2;        ///< valid + dirty (read with the tag)

  [[nodiscard]] usize line_bits() const noexcept { return line_bytes * 8; }
  [[nodiscard]] usize lines() const noexcept { return sets * ways; }
  [[nodiscard]] usize data_cells() const noexcept {
    return lines() * line_bits();
  }
  [[nodiscard]] usize tag_cells() const noexcept {
    return lines() * (tag_bits + state_bits);
  }
  [[nodiscard]] usize meta_cells() const noexcept {
    return lines() * meta_bits;
  }
  [[nodiscard]] usize total_cells() const noexcept {
    return data_cells() + tag_cells() + meta_cells();
  }
  [[nodiscard]] usize capacity_bytes() const noexcept {
    return lines() * line_bytes;
  }
};

/// Per-access peripheral energies for a fixed geometry + technology.
/// Construct once per cache; all values are precomputed.
class ArrayModel {
 public:
  ArrayModel(const TechParams& tech, const ArrayGeometry& geom);

  [[nodiscard]] const ArrayGeometry& geometry() const noexcept {
    return geom_;
  }
  [[nodiscard]] const TechParams& tech() const noexcept { return tech_; }

  /// Row decode + wordline assertion for one data-array access.
  [[nodiscard]] Energy decode_energy() const noexcept { return decode_; }

  // The per-access accessors below are inline: every energy policy calls
  // several of them per simulated access, and at replay speed the call
  // overhead outweighs the two multiplies they perform.

  /// Tag-side lookup: reads tag+state bits of all ways in the set (stored
  /// pattern passed in as `tag_ones` over `tag_bits_read` total bits) and
  /// runs the comparators.
  [[nodiscard]] Energy tag_lookup_energy(usize tag_bits_read,
                                         usize tag_ones) const noexcept {
    assert(tag_ones <= tag_bits_read);
    return read_energy_counts(tech_.cell, tag_bits_read, tag_ones) +
           static_cast<double>(tag_bits_read) *
               tech_.periph.tag_compare_per_bit;
  }

  /// Writing a tag (on fill): per-bit write energy over the stored pattern.
  [[nodiscard]] Energy tag_write_energy(usize tag_bits_written,
                                        usize tag_ones) const noexcept {
    assert(tag_ones <= tag_bits_written);
    return write_energy_counts(tech_.cell, tag_bits_written, tag_ones);
  }

  /// Output-driver energy for transferring `bits` to/from the CPU side.
  [[nodiscard]] Energy output_energy(usize bits) const noexcept {
    return static_cast<double>(bits) * tech_.periph.output_per_bit;
  }

  /// Total static leakage power of the array in watts (data+tag+meta).
  [[nodiscard]] double leakage_watts() const noexcept;

  /// First-order area estimate in um^2 (cells only, 6T cell footprint),
  /// used to report the H&D metadata overhead of CNT-Cache.
  [[nodiscard]] double area_um2() const noexcept;

 private:
  TechParams tech_;
  ArrayGeometry geom_;
  Energy decode_{};
};

}  // namespace cnt
