#include "energy/sram_cell.hpp"

#include <cassert>

#include "common/bits.hpp"

namespace cnt {

namespace {
// Cost factor for re-writing a bit with its existing value in the
// flip-aware model: the cell's internal nodes do not swing, only the
// write driver toggles.
constexpr double kUnchangedFactor = 0.15;
}  // namespace

Energy write_energy_flip_aware(const BitEnergies& e,
                               std::span<const u8> old_data,
                               std::span<const u8> new_data) noexcept {
  assert(old_data.size() == new_data.size());
  Energy total{};
  for (usize i = 0; i < new_data.size(); ++i) {
    const u8 changed = static_cast<u8>(old_data[i] ^ new_data[i]);
    const u8 nw = new_data[i];
    for (u32 b = 0; b < 8; ++b) {
      const bool bit = (nw >> b) & 1u;
      const Energy full = e.write(bit);
      if ((changed >> b) & 1u) {
        total += full;
      } else {
        total += full * kUnchangedFactor;
      }
    }
  }
  return total;
}

}  // namespace cnt
