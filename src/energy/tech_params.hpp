// Technology parameters: CNFET and CMOS SRAM per-bit access energies plus
// first-order peripheral-circuit parameters.
//
// This file reconstructs the paper's missing Table `tab:rw-analysis`.
// The paper states two quantitative anchors we must satisfy:
//   (1) "the energy consumption of writing 1 to an SRAM cell is almost 10X
//        higher than writing 0"                          (abstract), and
//   (2) "E_rd0 - E_rd1 is quite close to E_wr1 - E_wr0" (Section III.C),
//        which is what makes Th_rd ~= W/2 in Eq. (3).
// Absolute magnitudes are taken from published CNFET SRAM characterization
// (6T CNFET SRAM cells at a 16 nm-class node report sub-fJ to few-fJ per-bit
// dynamic energies, roughly 2-5x below CMOS at the same node). The asymmetry
// comes from the single-ended behaviour of the CNFET cell the paper builds
// on: driving the cell node high through the n-type CNFET pass path and
// discharging a precharged bitline on a stored '0' are the expensive cases.
#pragma once

#include <string>

#include "common/units.hpp"

namespace cnt {

/// Per-bit dynamic energy of one data-array column access, including the
/// cell core, bitline swing, and sense/write driver for that column. These
/// are the E_rd0/E_rd1/E_wr0/E_wr1 of the paper's Eqs. (1)-(6).
struct BitEnergies {
  Energy rd0;  ///< read a stored '0'
  Energy rd1;  ///< read a stored '1'
  Energy wr0;  ///< write a '0'
  Energy wr1;  ///< write a '1'

  /// Energy to read one bit of value `bit`.
  [[nodiscard]] constexpr Energy read(bool bit) const noexcept {
    return bit ? rd1 : rd0;
  }
  /// Energy to write one bit of value `bit`.
  [[nodiscard]] constexpr Energy write(bool bit) const noexcept {
    return bit ? wr1 : wr0;
  }

  /// The read asymmetry E_rd0 - E_rd1 (positive when '0' reads cost more).
  [[nodiscard]] constexpr Energy read_delta() const noexcept {
    return rd0 - rd1;
  }
  /// The write asymmetry E_wr1 - E_wr0 (positive when '1' writes cost more).
  [[nodiscard]] constexpr Energy write_delta() const noexcept {
    return wr1 - wr0;
  }
};

/// Peripheral-circuit parameters for the CACTI-lite array model and the
/// CNT-Cache adaptive-encoding logic overhead.
struct PeripheralParams {
  /// Row-decoder energy per decoded address bit (covers predecode + final
  /// decode stage switching).
  Energy decoder_per_addr_bit = fJ(1.8);
  /// Wordline charge/discharge energy per cell hanging off the line.
  Energy wordline_per_cell = fJ(0.045);
  /// Tag comparator energy per compared tag bit per way.
  Energy tag_compare_per_bit = fJ(0.05);
  /// Output/IO driver energy per transferred data bit.
  Energy output_per_bit = fJ(0.12);
  /// Adaptive-encoder inverter+mux energy per data bit passing through it
  /// (charged on every CNT-Cache data access; the paper calls the encoder
  /// "a series of inverters with 2-to-1 multiplexers").
  Energy encoder_per_bit = fJ(0.018);
  /// Predictor counter-update energy per access (A_num/Wr_num increment).
  Energy predictor_update = fJ(3.0);
  /// Predictor window-boundary evaluation energy per data bit (popcount
  /// tree + threshold-table lookup + comparison), charged once every W
  /// accesses to a line.
  Energy predictor_eval_per_bit = fJ(0.01);
  /// FIFO push/pop energy per byte moved through the deferred-update queue.
  Energy fifo_per_byte = fJ(0.4);
  /// ECC syndrome/parity XOR-tree energy per covered payload bit, charged
  /// on every protected array read and write (the checker sees the whole
  /// codeword either way).
  Energy ecc_check_per_bit = fJ(0.004);
  /// Correction-path energy per corrected/detected event (syndrome decode
  /// + flip mux), on top of the per-bit check cost.
  Energy ecc_correct_per_event = fJ(30.0);
  /// Static leakage power per cell, in watts (used by the leakage report;
  /// dynamic-energy experiments follow the paper and exclude it).
  double leakage_per_cell_w = 2.0e-12;
};

/// A complete technology description for one cache implementation.
struct TechParams {
  std::string name;
  BitEnergies cell;
  PeripheralParams periph;
  /// Achievable clock for a cache built in this technology; CNFET's higher
  /// drive current supports a faster clock at the same node ("promises
  /// both higher clock speed and energy efficiency", abstract). Used by
  /// the EDP experiment.
  double clock_ghz = 2.0;

  /// CNFET 6T SRAM at a 16 nm-class technology node (reconstruction of the
  /// paper's Table `tab:rw-analysis`; see file comment).
  ///   wr1 / wr0  ~= 9.7x   -- abstract's "almost 10X"
  ///   rd0 - rd1 = 2.03 fJ vs wr1 - wr0 = 2.25 fJ -- "quite close",
  ///   giving Th_rd = W / (1 + 2.03/2.25) = 0.526 W ~= W/2 per Eq. (3).
  [[nodiscard]] static TechParams cnfet();

  /// Conventional CMOS 6T SRAM at the same node, for the CMOS-vs-CNFET
  /// comparison. Per-bit energies are nearly value-symmetric (differential
  /// bitlines), and 2-3x the CNFET magnitudes ("power-hungry CMOS cache").
  [[nodiscard]] static TechParams cmos();
};

}  // namespace cnt
