#include "energy/energy_ledger.hpp"

namespace cnt {

std::string_view to_string(EnergyCategory c) noexcept {
  switch (c) {
    case EnergyCategory::kDataRead: return "data_read";
    case EnergyCategory::kDataWrite: return "data_write";
    case EnergyCategory::kTagRead: return "tag_read";
    case EnergyCategory::kTagWrite: return "tag_write";
    case EnergyCategory::kDecode: return "decode";
    case EnergyCategory::kOutput: return "output";
    case EnergyCategory::kMetaRead: return "meta_read";
    case EnergyCategory::kMetaWrite: return "meta_write";
    case EnergyCategory::kEncoderLogic: return "encoder_logic";
    case EnergyCategory::kPredictorLogic: return "predictor_logic";
    case EnergyCategory::kReencode: return "reencode";
    case EnergyCategory::kFifo: return "fifo";
    case EnergyCategory::kEccStorage: return "ecc_storage";
    case EnergyCategory::kEccLogic: return "ecc_logic";
    case EnergyCategory::kCount: break;
  }
  return "?";
}

Energy EnergyLedger::total() const noexcept {
  Energy sum{};
  for (const auto e : entries_) sum += e;
  return sum;
}

Energy EnergyLedger::array_total() const noexcept {
  using C = EnergyCategory;
  return get(C::kDataRead) + get(C::kDataWrite) + get(C::kTagRead) +
         get(C::kTagWrite) + get(C::kDecode) + get(C::kOutput) +
         get(C::kEccStorage) + get(C::kEccLogic);
}

Energy EnergyLedger::overhead_total() const noexcept {
  using C = EnergyCategory;
  return get(C::kMetaRead) + get(C::kMetaWrite) + get(C::kEncoderLogic) +
         get(C::kPredictorLogic) + get(C::kReencode) + get(C::kFifo);
}

void EnergyLedger::merge(const EnergyLedger& other) noexcept {
  for (usize i = 0; i < entries_.size(); ++i) {
    entries_[i] += other.entries_[i];
    counts_[i] += other.counts_[i];
  }
}

void EnergyLedger::reset() noexcept {
  entries_.fill(Energy{});
  counts_.fill(0);
}

}  // namespace cnt
