#include "energy/array_model.hpp"

#include <cassert>

#include "common/bits.hpp"
#include "energy/sram_cell.hpp"

namespace cnt {

namespace {
// 6T SRAM cell footprint at a 16 nm-class node, in um^2. Used only for the
// relative area-overhead report (H&D bits vs. data bits), so the absolute
// value is uncritical.
constexpr double kCellAreaUm2 = 0.075;
}  // namespace

ArrayModel::ArrayModel(const TechParams& tech, const ArrayGeometry& geom)
    : tech_(tech), geom_(geom) {
  assert(geom.sets > 0 && is_pow2(geom.sets));
  assert(geom.ways > 0);
  assert(geom.line_bytes > 0 && is_pow2(geom.line_bytes));

  const u32 addr_bits = log2_exact(geom.sets);
  // Wordline spans the selected row: one way's data+meta columns plus the
  // set's tag columns asserted during lookup.
  const auto row_cells = static_cast<double>(
      geom.line_bits() + geom.meta_bits + geom.tag_bits + geom.state_bits);
  decode_ = static_cast<double>(addr_bits) * tech.periph.decoder_per_addr_bit +
            row_cells * tech.periph.wordline_per_cell;
}

double ArrayModel::leakage_watts() const noexcept {
  return static_cast<double>(geom_.total_cells()) *
         tech_.periph.leakage_per_cell_w;
}

double ArrayModel::area_um2() const noexcept {
  return static_cast<double>(geom_.total_cells()) * kCellAreaUm2;
}

}  // namespace cnt
