// SRAM cell/word energy helpers: bit-pattern-dependent read & write energy.
//
// Implements the per-access energy sums the paper uses in Eqs. (4)/(5):
// reading a stored pattern costs N1*E_rd1 + (L-N1)*E_rd0 and writing a
// pattern costs N1*E_wr1 + (L-N1)*E_wr0, where N1 is the number of '1'
// bits among the L bits touched.
#pragma once

#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "energy/tech_params.hpp"

namespace cnt {

/// Energy to read `bit_count` stored bits of which `ones` are '1'.
[[nodiscard]] constexpr Energy read_energy_counts(const BitEnergies& e,
                                                  usize bit_count,
                                                  usize ones) noexcept {
  return static_cast<double>(ones) * e.rd1 +
         static_cast<double>(bit_count - ones) * e.rd0;
}

/// Energy to write `bit_count` bits of which `ones` are '1'.
[[nodiscard]] constexpr Energy write_energy_counts(const BitEnergies& e,
                                                   usize bit_count,
                                                   usize ones) noexcept {
  return static_cast<double>(ones) * e.wr1 +
         static_cast<double>(bit_count - ones) * e.wr0;
}

/// Energy to read the stored byte buffer (all bits). Inline: the baseline
/// policies call this once per hit/fill, and the word-packed popcount is
/// cheaper than an out-of-line call at replay speed.
[[nodiscard]] inline Energy read_energy(const BitEnergies& e,
                                        std::span<const u8> stored) noexcept {
  return read_energy_counts(e, stored.size() * 8, popcount(stored));
}

/// Energy to write the byte buffer (paper model: every written bit is
/// charged at its value's write energy, regardless of the old content).
[[nodiscard]] inline Energy write_energy(const BitEnergies& e,
                                         std::span<const u8> data) noexcept {
  return write_energy_counts(e, data.size() * 8, popcount(data));
}

/// Precomputed read/write energies for a fixed field width, indexed by the
/// stored '1' count. Entries are produced by read_/write_energy_counts
/// themselves, so a lookup returns the bit-identical double the formula
/// would -- the table only removes the per-call conversions and multiplies
/// from loops that price one fixed-width field per iteration (partitions,
/// dirty words).
class EnergyByOnes {
 public:
  EnergyByOnes() = default;
  EnergyByOnes(const BitEnergies& e, usize width)
      : read_(width + 1), write_(width + 1) {
    for (usize ones = 0; ones <= width; ++ones) {
      read_[ones] = read_energy_counts(e, width, ones);
      write_[ones] = write_energy_counts(e, width, ones);
    }
  }

  [[nodiscard]] Energy read(usize ones) const noexcept { return read_[ones]; }
  [[nodiscard]] Energy write(usize ones) const noexcept { return write_[ones]; }

 private:
  std::vector<Energy> read_;
  std::vector<Energy> write_;
};

/// Flip-aware write model (ablation): only bits that change value are
/// charged, at the energy of the *new* value; unchanged bits cost the
/// (cheap) retention-write energy `e.wr0 * kUnchangedFactor`.
/// Precondition: old_data.size() == new_data.size().
[[nodiscard]] Energy write_energy_flip_aware(
    const BitEnergies& e, std::span<const u8> old_data,
    std::span<const u8> new_data) noexcept;

}  // namespace cnt
