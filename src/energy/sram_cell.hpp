// SRAM cell/word energy helpers: bit-pattern-dependent read & write energy.
//
// Implements the per-access energy sums the paper uses in Eqs. (4)/(5):
// reading a stored pattern costs N1*E_rd1 + (L-N1)*E_rd0 and writing a
// pattern costs N1*E_wr1 + (L-N1)*E_wr0, where N1 is the number of '1'
// bits among the L bits touched.
#pragma once

#include <span>

#include "common/types.hpp"
#include "common/units.hpp"
#include "energy/tech_params.hpp"

namespace cnt {

/// Energy to read `bit_count` stored bits of which `ones` are '1'.
[[nodiscard]] constexpr Energy read_energy_counts(const BitEnergies& e,
                                                  usize bit_count,
                                                  usize ones) noexcept {
  return static_cast<double>(ones) * e.rd1 +
         static_cast<double>(bit_count - ones) * e.rd0;
}

/// Energy to write `bit_count` bits of which `ones` are '1'.
[[nodiscard]] constexpr Energy write_energy_counts(const BitEnergies& e,
                                                   usize bit_count,
                                                   usize ones) noexcept {
  return static_cast<double>(ones) * e.wr1 +
         static_cast<double>(bit_count - ones) * e.wr0;
}

/// Energy to read the stored byte buffer (all bits).
[[nodiscard]] Energy read_energy(const BitEnergies& e,
                                 std::span<const u8> stored) noexcept;

/// Energy to write the byte buffer (paper model: every written bit is
/// charged at its value's write energy, regardless of the old content).
[[nodiscard]] Energy write_energy(const BitEnergies& e,
                                  std::span<const u8> data) noexcept;

/// Flip-aware write model (ablation): only bits that change value are
/// charged, at the energy of the *new* value; unchanged bits cost the
/// (cheap) retention-write energy `e.wr0 * kUnchangedFactor`.
/// Precondition: old_data.size() == new_data.size().
[[nodiscard]] Energy write_energy_flip_aware(
    const BitEnergies& e, std::span<const u8> old_data,
    std::span<const u8> new_data) noexcept;

}  // namespace cnt
