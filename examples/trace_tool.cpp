// Trace tool: generate suite workloads as portable trace files, inspect
// them, and replay them through the simulator.
//
//   $ ./trace_tool gen <workload> <out.(txt|bin|trs)> [scale]
//   $ ./trace_tool info <trace-file>
//   $ ./trace_tool replay <trace-file>
//
// The text format is human-readable/editable; the binary format is
// compact; the .trs chunked format (docs/trace_streaming.md) is compact
// AND streamable -- info and replay pull it chunk by chunk, so a .trs
// file larger than RAM still inspects and replays in O(chunk) memory.
// Replaying an external trace only exercises the cache + energy models
// (no initial memory image travels with a bare trace, so unwritten
// memory reads as zero).
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/stream/stream_reader.hpp"
#include "trace/stream/stream_writer.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  trace_tool gen <workload> <out.(txt|bin|trs)> [scale]\n"
            << "  trace_tool info <trace-file>\n"
            << "  trace_tool replay <trace-file>\n"
            << "workloads:";
  for (const auto& n : suite_names()) std::cerr << ' ' << n;
  std::cerr << " ifetch\n";
  return 1;
}

bool is_streamed(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".trs") == 0;
}

void print_info(const std::string& name, const TraceStats& s) {
  Table info({"metric", "value"});
  info.add_row({"name", name});
  info.add_row({"records", std::to_string(s.accesses)});
  info.add_row({"reads", std::to_string(s.reads)});
  info.add_row({"writes", std::to_string(s.writes)});
  info.add_row({"ifetches", std::to_string(s.ifetches)});
  info.add_row({"write fraction", Table::pct(s.write_fraction)});
  info.add_row({"unique 64B lines", std::to_string(s.unique_lines)});
  info.add_row({"footprint", Table::num(s.footprint_kib, 1) + " KiB"});
  info.add_row({"write bit-1 density", Table::pct(s.write_bit1_density)});
  std::cout << info.render();
}

void print_replay(const SimResult& res) {
  std::cout << "\nhit rate: " << Table::pct(res.cache_stats.hit_rate())
            << "\n\n"
            << breakdown_table(res) << "\nCNT-Cache saving: "
            << Table::pct(res.saving(kPolicyCnt)) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      if (argc < 4) return usage();
      const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
      const Workload w = build_workload(argv[2], scale);
      if (is_streamed(argv[3])) {
        stream::StreamTraceWriter writer(argv[3]);
        for (const auto& a : w.trace) writer.push(a);
        writer.finish();
      } else {
        save_trace(w.trace, argv[3]);
      }
      std::cout << "wrote " << w.trace.size() << " records to " << argv[3]
                << "\n";
      print_info(w.trace.name(), w.trace.stats());
    } else if (cmd == "info") {
      if (is_streamed(argv[2])) {
        stream::StreamTraceSource src(argv[2]);
        print_info(src.name(), stats_of(src));
      } else {
        const Trace t = load_trace(argv[2]);
        print_info(t.name(), t.stats());
      }
    } else if (cmd == "replay") {
      SimConfig cfg;
      if (is_streamed(argv[2])) {
        stream::StreamTraceSource src(argv[2]);
        const SimResult res = simulate(src, {}, cfg);
        print_info(src.name(), res.trace_stats);
        print_replay(res);
      } else {
        const Trace t = load_trace(argv[2]);
        Workload w;
        w.name = t.name();
        w.trace = t;
        const SimResult res = simulate(w, cfg);
        print_info(t.name(), res.trace_stats);
        print_replay(res);
      }
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << cnt::format_error(e) << "\n";
    return 1;
  }
  return 0;
}
