// Trace tool: generate suite workloads as portable trace files, inspect
// them, and replay them through the simulator.
//
//   $ ./trace_tool gen <workload> <out.(txt|bin)> [scale]
//   $ ./trace_tool info <trace-file>
//   $ ./trace_tool replay <trace-file>
//
// The text format is human-readable/editable; the binary format is compact.
// Replaying an external trace only exercises the cache + energy models (no
// initial memory image travels with a bare trace, so unwritten memory reads
// as zero).
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  trace_tool gen <workload> <out.(txt|bin)> [scale]\n"
            << "  trace_tool info <trace-file>\n"
            << "  trace_tool replay <trace-file>\n"
            << "workloads:";
  for (const auto& n : suite_names()) std::cerr << ' ' << n;
  std::cerr << " ifetch\n";
  return 1;
}

void print_info(const Trace& t) {
  const auto s = t.stats();
  Table info({"metric", "value"});
  info.add_row({"name", t.name()});
  info.add_row({"records", std::to_string(s.accesses)});
  info.add_row({"reads", std::to_string(s.reads)});
  info.add_row({"writes", std::to_string(s.writes)});
  info.add_row({"ifetches", std::to_string(s.ifetches)});
  info.add_row({"write fraction", Table::pct(s.write_fraction)});
  info.add_row({"unique 64B lines", std::to_string(s.unique_lines)});
  info.add_row({"footprint", Table::num(s.footprint_kib, 1) + " KiB"});
  info.add_row({"write bit-1 density", Table::pct(s.write_bit1_density)});
  std::cout << info.render();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      if (argc < 4) return usage();
      const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
      const Workload w = build_workload(argv[2], scale);
      save_trace(w.trace, argv[3]);
      std::cout << "wrote " << w.trace.size() << " records to " << argv[3]
                << "\n";
      print_info(w.trace);
    } else if (cmd == "info") {
      print_info(load_trace(argv[2]));
    } else if (cmd == "replay") {
      const Trace t = load_trace(argv[2]);
      Workload w;
      w.name = t.name();
      w.trace = t;
      SimConfig cfg;
      const SimResult res = simulate(w, cfg);
      print_info(t);
      std::cout << "\nhit rate: " << Table::pct(res.cache_stats.hit_rate())
                << "\n\n"
                << breakdown_table(res) << "\nCNT-Cache saving: "
                << Table::pct(res.saving(kPolicyCnt)) << "\n";
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << cnt::format_error(e) << "\n";
    return 1;
  }
  return 0;
}
