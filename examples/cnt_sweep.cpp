// cnt_sweep: sweep any configuration key without writing a bench binary,
// executed in parallel on the experiment engine.
//
//   $ ./cnt_sweep <base.ini|-> <config-key> <v1,v2,...> [workload|suite]
//                 [scale] [--jobs N] [--jsonl path] [--resume]
//                 [--job-timeout-ms N]
//
//   $ ./cnt_sweep - cnt.window 3,7,15,31 suite 0.2
//   $ ./cnt_sweep - cache.size 8k,16k,32k,64k zipf_kv 0.5 --jobs 8
//   $ ./cnt_sweep base.ini cnt.fill as-is,min-write,read-optimized,by-miss-type
//
// "-" uses the built-in defaults as the base configuration. The key may be
// any key `sim_config_from` understands (see src/sim/config_io.hpp).
// Parallelism: --jobs N, else $CNT_JOBS, else all hardware threads;
// results are deterministic and identical to --jobs 1 regardless.
// Ctrl-C stops the sweep gracefully; with --jsonl the flushed journal can
// be picked up by rerunning with --resume (docs/resumable_sweeps.md).
// --job-timeout-ms N (or $CNT_JOB_TIMEOUT_MS) arms the per-attempt
// watchdog: a hung job is cancelled and quarantined, the sweep completes
// without it, and the process exits 3 (docs/robustness.md).
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "exec/engine.hpp"
#include "exec/options.hpp"
#include "sim/config_io.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage() {
  std::cerr
      << "usage: cnt_sweep <base.ini|-> <config-key> <v1,v2,...> "
         "[workload|suite] [scale] [--jobs N] [--jsonl path] [--resume]\n"
         "                 [--job-timeout-ms N]\n"
         "examples:\n"
         "  cnt_sweep - cnt.window 3,7,15,31 suite 0.2\n"
         "  cnt_sweep - cache.size 8k,16k,32k,64k zipf_kv 0.5 --jobs 8\n"
         "  cnt_sweep - cnt.window 3,7,15 suite 0.2 --jsonl sweep.jsonl "
         "--resume\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Split flags from positionals so the engine options can go anywhere.
  std::vector<std::string> pos;
  std::string jsonl_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" || arg == "-j") {
      ++i;  // value consumed by jobs_from_args below
    } else if (arg.rfind("--jobs=", 0) == 0) {
      // handled by jobs_from_args
    } else if (arg == "--resume" || arg == "--no-resume") {
      // handled by resume_from_args
    } else if (arg == "--job-timeout-ms") {
      ++i;  // value consumed by u64_from_args below
    } else if (arg.rfind("--job-timeout-ms=", 0) == 0) {
      // handled by u64_from_args
    } else if (arg == "--jsonl") {
      if (i + 1 >= argc) return usage();
      jsonl_path = argv[++i];
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.size() < 3) return usage();
  const std::string base_path = pos[0];
  const std::string key = pos[1];
  const auto values = split_csv(pos[2]);
  const std::string target = pos.size() > 3 ? pos[3] : "suite";
  const double scale = pos.size() > 4 ? std::atof(pos[4].c_str()) : 0.25;
  const usize jobs = exec::jobs_from_args(argc, argv, 0);
  const bool resume = exec::resume_from_args(argc, argv, false);
  const u64 job_timeout_ms =
      exec::u64_from_args(argc, argv, "--job-timeout-ms", 0);
  if (values.empty()) return usage();
  if (resume && jsonl_path.empty()) {
    std::cerr << "error: --resume needs a journal; pass --jsonl <path>\n";
    return 1;
  }

  try {
    const Config base =
        base_path == "-" ? Config{} : Config::load(base_path);
    const std::vector<std::string> loads =
        target == "suite" ? suite_names()
                          : std::vector<std::string>{target};

    // One job per (value, workload); tag "key=value" groups them back.
    std::vector<exec::Job> batch;
    for (const auto& value : values) {
      Config cfg_ini = base;
      cfg_ini.set(key, value);
      SimConfig cfg = sim_config_from(cfg_ini);
      cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
      for (const auto& w : loads) {
        exec::Job job;
        job.workload = w;
        job.tag = key + "=" + value;
        job.config = cfg;
        job.scale = scale;
        batch.push_back(std::move(job));
      }
    }

    exec::ExperimentEngine engine({.jobs = jobs,
                                   .jsonl_path = jsonl_path,
                                   .progress = true,
                                   .resume = resume,
                                   .job_timeout_ms = job_timeout_ms,
                                   .handle_signals = true});
    std::vector<exec::JobOutcome> outcomes;
    try {
      outcomes = engine.run(std::move(batch));
    } catch (const exec::SweepInterrupted& e) {
      std::cerr << "\ninterrupted after " << e.completed() << "/"
                << e.total() << " jobs; journal flushed to "
                << e.journal_path()
                << "\nrerun with --resume to finish the remaining jobs\n";
      return 130;
    }
    const auto groups = exec::group_by_tag(outcomes);

    Table t({key, "baseline", "CNT-Cache", "saving"});
    for (usize i = 0; i < groups.size(); ++i) {
      // A group with quarantined/failed jobs has no meaningful aggregate;
      // render the damage instead of aborting the whole report.
      usize failed = 0;
      for (const exec::JobOutcome* o : groups[i].outcomes) {
        if (!o->ok) ++failed;
      }
      if (failed > 0) {
        t.add_row({values[i], "-", "-",
                   "quarantined (" + std::to_string(failed) + "/" +
                       std::to_string(groups[i].outcomes.size()) + ")"});
        continue;
      }
      const auto results = exec::results_of(groups[i].outcomes);
      double saving = 0;
      Energy base_e{}, cnt_e{};
      for (const auto& r : results) {
        base_e += r.energy(kPolicyBaseline);
        cnt_e += r.energy(kPolicyCnt);
      }
      base_e = base_e / static_cast<double>(results.size());
      cnt_e = cnt_e / static_cast<double>(results.size());
      saving = target == "suite" ? mean_saving(results)
                                 : results.front().saving(kPolicyCnt);
      t.add_row({values[i], base_e.to_string(), cnt_e.to_string(),
                 Table::pct(saving)});
    }
    std::cout << "sweep over " << key << " ("
              << (target == "suite" ? "suite mean" : target) << ", scale "
              << scale << ", " << engine.worker_count() << " jobs)\n\n"
              << t.render();
    if (!jsonl_path.empty()) std::cout << "\njsonl: " << jsonl_path << "\n";
    const usize quarantined = exec::quarantined_count(outcomes);
    if (quarantined > 0) {
      std::cerr << "warning: " << quarantined << " job(s) quarantined ("
                << "timed out or exhausted retries); the journal records "
                   "each as a sealed Q-row -- rerun with --resume to "
                   "re-attempt only those jobs\n";
      return exec::sweep_exit_code(outcomes);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << cnt::format_error(e) << "\n";
    return 1;
  }
  return 0;
}
