// cnt_sweep: sweep any configuration key without writing a bench binary.
//
//   $ ./cnt_sweep <base.ini|-> <config-key> <v1,v2,...> [workload|suite] [scale]
//
//   $ ./cnt_sweep - cnt.window 3,7,15,31 suite 0.2
//   $ ./cnt_sweep - cache.size 8k,16k,32k,64k zipf_kv 0.5
//   $ ./cnt_sweep base.ini cnt.fill as-is,min-write,read-optimized,by-miss-type
//
// "-" uses the built-in defaults as the base configuration. The key may be
// any key `sim_config_from` understands (see src/sim/config_io.hpp).
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/config_io.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage() {
  std::cerr
      << "usage: cnt_sweep <base.ini|-> <config-key> <v1,v2,...> "
         "[workload|suite] [scale]\n"
         "examples:\n"
         "  cnt_sweep - cnt.window 3,7,15,31 suite 0.2\n"
         "  cnt_sweep - cache.size 8k,16k,32k,64k zipf_kv 0.5\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string base_path = argv[1];
  const std::string key = argv[2];
  const auto values = split_csv(argv[3]);
  const std::string target = argc > 4 ? argv[4] : "suite";
  const double scale = argc > 5 ? std::atof(argv[5]) : 0.25;
  if (values.empty()) return usage();

  try {
    const Config base =
        base_path == "-" ? Config{} : Config::load(base_path);

    Table t({key, "baseline", "CNT-Cache", "saving"});
    for (const auto& value : values) {
      Config cfg_ini = base;
      cfg_ini.set(key, value);
      const SimConfig cfg = sim_config_from(cfg_ini);

      double saving = 0;
      Energy base_e{}, cnt_e{};
      if (target == "suite") {
        SimConfig quiet = cfg;
        quiet.with_cmos = quiet.with_static = quiet.with_ideal = false;
        const auto results = run_suite(quiet, scale);
        saving = mean_saving(results);
        for (const auto& r : results) {
          base_e += r.energy(kPolicyBaseline);
          cnt_e += r.energy(kPolicyCnt);
        }
        base_e = base_e / static_cast<double>(results.size());
        cnt_e = cnt_e / static_cast<double>(results.size());
      } else {
        SimConfig quiet = cfg;
        quiet.with_cmos = quiet.with_static = quiet.with_ideal = false;
        const auto res = simulate(build_workload(target, scale), quiet);
        saving = res.saving(kPolicyCnt);
        base_e = res.energy(kPolicyBaseline);
        cnt_e = res.energy(kPolicyCnt);
      }
      t.add_row({value, base_e.to_string(), cnt_e.to_string(),
                 Table::pct(saving)});
    }
    std::cout << "sweep over " << key << " ("
              << (target == "suite" ? "suite mean" : target) << ", scale "
              << scale << ")\n\n"
              << t.render();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
