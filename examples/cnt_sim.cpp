// cnt_sim: config-file-driven simulator front-end.
//
//   $ ./cnt_sim experiment.ini
//   $ ./cnt_sim experiment.ini workload2 0.5   # override workload + scale
//
// The INI schema is documented in src/sim/config_io.hpp; [workload]
// name/scale select the stimulus, [output] json = <path> additionally
// dumps the machine-readable result. Unknown keys produce warnings rather
// than silent ignores.
#include <iostream>

#include "common/config.hpp"
#include "sim/config_io.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/stats_dump.hpp"
#include "trace/workload_suite.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: cnt_sim <config.ini> [workload] [scale]\n\n"
              << "example config:\n"
              << "  [cache]\n  size = 64k\n  ways = 8\n"
              << "  [cnt]\n  window = 31\n  partitions = 16\n"
              << "  [workload]\n  name = zipf_kv\n  scale = 1.0\n";
    return 1;
  }

  try {
    const cnt::Config ini = cnt::Config::load(argv[1]);

    // Warn about keys the reader does not understand (typos), with a
    // nearest-match suggestion when one is close enough.
    auto known = cnt::known_sim_config_keys();
    known.push_back("output.json");
    for (const auto& [key, suggestion] : ini.unknown_keys(known)) {
      std::cerr << "warning: unknown config key '" << key << "'";
      if (!suggestion.empty()) {
        std::cerr << " (did you mean '" << suggestion << "'?)";
      }
      std::cerr << "\n";
    }

    const cnt::SimConfig cfg = cnt::sim_config_from(ini);
    const std::string workload =
        argc > 2 ? argv[2] : ini.get_string("workload.name", "zipf_kv");
    const double scale = argc > 3
                             ? std::atof(argv[3])
                             : ini.get_double("workload.scale", 1.0);

    std::cout << "cache   : " << cfg.cache.size_bytes / 1024 << " KiB "
              << cfg.cache.ways << "-way, " << cfg.cache.line_bytes
              << " B lines, " << to_string(cfg.cache.replacement) << ", "
              << to_string(cfg.cache.write_policy) << "/"
              << to_string(cfg.cache.alloc_policy) << "\n"
              << "cnt     : W=" << cfg.cnt.window << " K="
              << cfg.cnt.partitions << " fifo=" << cfg.cnt.fifo_depth
              << " fill=" << to_string(cfg.cnt.fill_policy)
              << " gran=" << to_string(cfg.cnt.write_granularity)
              << " hist=" << to_string(cfg.cnt.history_scope) << "\n"
              << "workload: " << workload << " @ scale " << scale << "\n\n";

    const cnt::Workload w = cnt::build_workload(workload, scale);
    const cnt::SimResult res = cnt::simulate(w, cfg);

    std::cout << "hit rate: " << cnt::Table::pct(res.cache_stats.hit_rate())
              << "\n\n"
              << cnt::breakdown_table(res) << "\nCNT-Cache saving vs "
              << cnt::kPolicyBaseline << ": "
              << cnt::Table::pct(res.saving(cnt::kPolicyCnt)) << "\n";

    if (const auto json_path = ini.get("output.json")) {
      cnt::dump_json_file({res}, *json_path);
      std::cout << "json: " << *json_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << cnt::format_error(e) << "\n";
    return 1;
  }
  return 0;
}
