// Hierarchy demo: a split-L1 + unified-L2 system with CNT-Cache adaptive
// encoding applied at the L1s, fed by an interleaved instruction + data
// stream (about two fetches per data access).
//
//   $ ./hierarchy_demo [scale]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sim/hierarchy_runner.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  const Workload data = build_workload("zipf_kv", scale);
  const Workload code = build_workload("ifetch", scale);

  // Run twice: everything baseline, then CNT-Cache at the L1s.
  HierarchyRunConfig base_cfg;
  base_cfg.cnt_at_l1i = base_cfg.cnt_at_l1d = base_cfg.cnt_at_l2 = false;
  HierarchyRunConfig cnt_cfg;  // defaults: CNT at L1I + L1D

  const HierarchyRunResult base = run_hierarchy(base_cfg, code, data);
  const HierarchyRunResult cnt = run_hierarchy(cnt_cfg, code, data);

  Table t({"level", "accesses", "hit%", "baseline", "CNT-Cache", "saving"});
  for (const char* level : {"L1I", "L1D", "L2"}) {
    const auto& b = base.level(level);
    const auto& c = cnt.level(level);
    const double bj = b.ledger.total().in_joules();
    const double cj = c.ledger.total().in_joules();
    t.add_row({level, std::to_string(b.stats.accesses),
               Table::pct(b.stats.hit_rate()), b.ledger.total().to_string(),
               c.ledger.total().to_string(),
               Table::pct(bj > 0 ? 1.0 - cj / bj : 0.0)});
  }
  t.add_row({"caches", "", "", base.cache_total().to_string(),
             cnt.cache_total().to_string(),
             Table::pct(1.0 - cnt.cache_total() / base.cache_total())});

  std::cout << "Two-level hierarchy with CNT-Cache at the L1s\n"
            << "(zipf_kv data stream + Zipf basic-block ifetch stream)\n\n"
            << t.render() << "\n"
            << "DRAM traffic (unchanged by encoding): "
            << cnt.dram_energy.to_string() << "\n"
            << "L1 energy dominates (it absorbs nearly all accesses); the\n"
               "L2 sees only miss traffic and stays at baseline here.\n";
  return 0;
}
