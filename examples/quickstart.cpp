// Quickstart: simulate one workload through a 32 KiB CNT-Cache and print
// where the energy goes.
//
//   $ ./quickstart [workload] [scale]
//
// Demonstrates the core public API: build a workload, configure the
// simulation, run it, inspect savings and the per-category breakdown.
#include <cstdlib>
#include <iostream>

#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "zipf_kv";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::cout << "CNT-Cache quickstart\n====================\n\n";

  // 1. Build a benchmark workload (deterministic for a given scale).
  cnt::Workload w;
  try {
    w = cnt::build_workload(workload, scale);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\nknown workloads:";
    for (const auto& n : cnt::suite_names()) std::cerr << ' ' << n;
    std::cerr << " ifetch\n";
    return 1;
  }
  const auto ts = w.trace.stats();
  std::cout << "workload    : " << w.name << " -- " << w.description << "\n"
            << "accesses    : " << ts.accesses << " (" << ts.writes
            << " writes)\n"
            << "footprint   : " << ts.footprint_kib << " KiB\n\n";

  // 2. Configure the simulated cache (defaults: 32 KiB, 4-way, 64 B lines,
  //    W = 15, K = 8 partitions -- the paper's setup).
  cnt::SimConfig cfg;

  // 3. Run. One functional pass; every energy policy observes it.
  const cnt::SimResult res = cnt::simulate(w, cfg);

  std::cout << "hit rate    : "
            << cnt::Table::pct(res.cache_stats.hit_rate()) << "\n\n";

  std::cout << "dynamic energy by policy:\n";
  for (const auto& p : res.policies) {
    std::cout << "  " << p.name << (p.name.size() < 8 ? "\t\t" : "\t")
              << p.total().to_string() << "\n";
  }
  std::cout << "\nCNT-Cache saving vs CNFET baseline: "
            << cnt::Table::pct(res.saving(cnt::kPolicyCnt)) << "\n\n";

  std::cout << "energy breakdown:\n" << cnt::breakdown_table(res) << "\n";

  const auto* p = res.find(cnt::kPolicyCnt);
  if (p != nullptr && p->has_cnt_stats) {
    std::cout << "predictor activity: " << p->cnt_stats.windows_evaluated
              << " windows, " << p->cnt_stats.switch_decisions
              << " switch decisions, " << p->cnt_stats.reencodes_applied
              << " re-encodes applied, " << p->queue_stats.dropped_full
              << " FIFO drops\n";
  }
  return 0;
}
