// Kernel capture demo: write your own memory kernels as plain C++ and
// measure them in the CNT-Cache simulator -- no trace files, no generator
// code. Three mini-kernels with very different encoding behaviour:
//
//   histogram   -- hot sparse counters, read-modify-write (predictor food)
//   binsearch   -- pointer-free log-probing over sorted keys, read-only
//   fir_filter  -- f32 streaming convolution, dense float data
//
//   $ ./kernel_capture
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/capture.hpp"

using namespace cnt;

namespace {

Workload histogram_kernel() {
  TraceCapture tc("histogram");
  Rng rng(42);
  constexpr usize kBuckets = 512;
  constexpr usize kSamples = 40000;

  auto counts = tc.array<u64>(0x1000'0000, kBuckets);
  ZipfSampler zipf(kBuckets, 0.8);
  for (usize i = 0; i < kSamples; ++i) {
    counts[zipf.sample(rng)] += 1;  // load + store per sample
  }
  return tc.take();
}

Workload binsearch_kernel() {
  TraceCapture tc("binsearch");
  Rng rng(43);
  constexpr usize kKeys = 8192;
  constexpr usize kLookups = 20000;

  std::vector<u64> sorted(kKeys);
  u64 v = 0;
  for (auto& k : sorted) {
    v += 1 + rng.uniform(50);
    k = v;
  }
  auto keys = tc.array<u64>(0x2000'0000, sorted);

  for (usize q = 0; q < kLookups; ++q) {
    const u64 needle = rng.uniform(v);
    usize lo = 0, hi = kKeys;
    while (lo < hi) {
      const usize mid = (lo + hi) / 2;
      if (static_cast<u64>(keys[mid]) < needle) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
  }
  return tc.take();
}

Workload fir_kernel() {
  TraceCapture tc("fir_filter");
  Rng rng(44);
  constexpr usize kTaps = 16;
  constexpr usize kSamples = 16384;

  std::vector<float> sig(kSamples), tap(kTaps);
  for (auto& s : sig) s = static_cast<float>(rng.gaussian());
  for (auto& t : tap) t = static_cast<float>(rng.gaussian() * 0.2);
  auto x = tc.array<float>(0x3000'0000, sig);
  auto h = tc.array<float>(0x3800'0000, tap);
  auto y = tc.array<float>(0x4000'0000, kSamples);

  for (usize n = kTaps; n < kSamples; ++n) {
    float acc = 0;
    for (usize k = 0; k < kTaps; ++k) {
      acc += static_cast<float>(x[n - k]) * static_cast<float>(h[k]);
    }
    y[n] = acc;
  }
  return tc.take();
}

}  // namespace

int main() {
  std::cout << "Kernel capture: three hand-written C++ kernels through the "
               "CNT-Cache simulator\n\n";

  SimConfig cfg;
  Table t({"kernel", "accesses", "wr%", "hit%", "baseline", "CNT-Cache",
           "saving"});
  for (Workload (*make)() : {histogram_kernel, binsearch_kernel, fir_kernel}) {
    const Workload w = make();
    const auto ts = w.trace.stats();
    const SimResult res = simulate(w, cfg);
    t.add_row({w.name, std::to_string(ts.accesses),
               Table::pct(ts.write_fraction),
               Table::pct(res.cache_stats.hit_rate()),
               res.energy(kPolicyBaseline).to_string(),
               res.energy(kPolicyCnt).to_string(),
               Table::pct(res.saving(kPolicyCnt))});
  }
  std::cout << t.render()
            << "\nhistogram: sparse counters, adaptive encoding shines.\n"
               "binsearch: read-only integer keys, read-optimized fills "
               "carry it.\nfir_filter: dense float data, little to encode "
               "-- the honest case.\n";
  return 0;
}
