// D-Cache workload explorer: run the full ten-program suite and print the
// per-workload savings table (the headline experiment, interactively).
//
//   $ ./dcache_workloads [scale] [window] [partitions]
//
// e.g. `./dcache_workloads 0.5 31 16` runs at half trace length with a
// 31-access window and 16 partitions per line.
#include <cstdlib>
#include <iostream>

#include "sim/report.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  cnt::SimConfig cfg;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  if (argc > 2) cfg.cnt.window = static_cast<cnt::usize>(std::atoi(argv[2]));
  if (argc > 3) {
    cfg.cnt.partitions = static_cast<cnt::usize>(std::atoi(argv[3]));
  }

  std::cout << "CNT-Cache D-Cache suite\n"
            << "  cache   : " << cfg.cache.size_bytes / 1024 << " KiB, "
            << cfg.cache.ways << "-way, " << cfg.cache.line_bytes
            << " B lines\n"
            << "  window  : W = " << cfg.cnt.window << "\n"
            << "  K       : " << cfg.cnt.partitions << " partitions\n"
            << "  fill    : " << to_string(cfg.cnt.fill_policy) << "\n"
            << "  scale   : " << scale << "\n\n";

  const auto results = cnt::run_suite(cfg, scale);
  std::cout << cnt::savings_table(results) << "\n";
  std::cout << "mean CNT-Cache saving vs CNFET baseline: "
            << cnt::Table::pct(cnt::mean_saving(results))
            << "   (paper reports 22.2% on its benchmark set)\n";
  return 0;
}
