// Device explorer: walk the whole modeling stack bottom-up for one CNFET
// design point -- transistor quantities, derived 6T-cell energies, the
// threshold table they imply, and the headline cache saving.
//
//   $ ./device_explorer [tubes] [diameter_nm] [vdd]
#include <cstdlib>
#include <iostream>

#include "cnt/threshold.hpp"
#include "common/table.hpp"
#include "device/cell_derivation.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main(int argc, char** argv) {
  CnfetDeviceParams dev;
  if (argc > 1) dev.tubes_per_device = static_cast<u32>(std::atoi(argv[1]));
  if (argc > 2) dev.diameter_nm = std::atof(argv[2]);
  if (argc > 3) dev.vdd = std::atof(argv[3]);

  std::cout << "CNFET device -> cell -> cache, bottom up\n"
            << "=========================================\n\n";

  CnfetDevice d;
  try {
    d = evaluate(dev);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  Table dt({"device quantity", "value"});
  dt.add_row({"tubes per device", std::to_string(dev.tubes_per_device)});
  dt.add_row({"tube diameter", Table::num(dev.diameter_nm, 2) + " nm"});
  dt.add_row({"VDD", Table::num(dev.vdd, 2) + " V"});
  dt.add_row({"threshold Vth", Table::num(d.vth, 3) + " V"});
  dt.add_row({"Ion (n / p)", Table::num(d.ion_n * 1e6, 1) + " / " +
                                 Table::num(d.ion_p * 1e6, 1) + " uA"});
  dt.add_row({"device capacitance", Table::num(d.c_device * 1e18, 0) + " aF"});
  dt.add_row({"switch energy", Energy::joules(d.switch_energy).to_string()});
  std::cout << dt.render() << "\n";

  const TechParams tech = derive_tech_params(dev);
  Table ct({"cell energy", "derived", "calibrated table"});
  const BitEnergies calib = TechParams::cnfet().cell;
  ct.add_row({"E_rd0", tech.cell.rd0.to_string(), calib.rd0.to_string()});
  ct.add_row({"E_rd1", tech.cell.rd1.to_string(), calib.rd1.to_string()});
  ct.add_row({"E_wr0", tech.cell.wr0.to_string(), calib.wr0.to_string()});
  ct.add_row({"E_wr1", tech.cell.wr1.to_string(), calib.wr1.to_string()});
  ct.add_row({"wr1/wr0", Table::num(tech.cell.wr1 / tech.cell.wr0, 2) + "x",
              Table::num(calib.wr1 / calib.wr0, 2) + "x"});
  ct.add_row({"clock", Table::num(tech.clock_ghz, 2) + " GHz",
              Table::num(TechParams::cnfet().clock_ghz, 2) + " GHz"});
  std::cout << ct.render() << "\n";

  const ThresholdTable tt(tech.cell, 15, 64);
  std::cout << "Th_rd (Eq. 3, W=15): " << Table::num(tt.th_rd(), 2)
            << "  (paper: roughly W/2)\n\n";

  std::cout << "running the suite (scale 0.2) with the derived cell...\n";
  SimConfig cfg;
  cfg.tech = tech;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const auto results = run_suite(cfg, 0.2);
  std::cout << "mean CNT-Cache saving with this device: "
            << Table::pct(mean_saving(results)) << "\n";
  return 0;
}
