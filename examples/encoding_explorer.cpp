// Encoding explorer: a worked reproduction of the paper's Fig. 2
// (partitioned cache-line encoding) and Algorithm 1's threshold machinery.
//
//   $ ./encoding_explorer
//
// Shows, for a concrete 64 B line whose partitions have different bit
// densities, what whole-line vs partitioned encoding store, and what each
// costs to read/write; then prints the precomputed threshold table
// Th_bit1num[Wr_num] for W = 15.
#include <iomanip>
#include <iostream>
#include <vector>

#include "cnt/encoding.hpp"
#include "cnt/threshold.hpp"
#include "common/bits.hpp"
#include "common/table.hpp"
#include "energy/sram_cell.hpp"

using namespace cnt;

namespace {

Energy line_read_cost(const PartitionScheme& ps, const BitEnergies& cell,
                      std::span<const u8> logical, u64 dirs) {
  Energy e{};
  for (usize p = 0; p < ps.partitions(); ++p) {
    e += read_energy_counts(
        cell, ps.partition_bits(),
        stored_partition_ones(ps, logical, p, (dirs >> p) & 1));
  }
  return e;
}

}  // namespace

int main() {
  const BitEnergies cell = TechParams::cnfet().cell;
  const PartitionScheme ps(64, 8);

  std::cout << "Fig. 2 reproduction: partitioned cache-line encoding\n"
            << "====================================================\n\n";

  // Construct the figure's scenario: raw data with far more '0' than '1'
  // bits overall, except one partition (K-1) that is '1'-dense.
  std::vector<u8> line(64, 0);
  for (usize i = 0; i < 56; ++i) line[i] = (i % 9 == 0) ? 0x21 : 0x00;
  for (usize i = 56; i < 64; ++i) line[i] = 0xEF;  // dense partition 7

  const auto ones = partition_ones(ps, line);
  Table layout({"partition", "bit1/64", "density"});
  for (usize p = 0; p < 8; ++p) {
    layout.add_row({std::to_string(p), std::to_string(ones[p]),
                    Table::pct(static_cast<double>(ones[p]) / 64.0)});
  }
  std::cout << layout.render() << "\n";

  // Read-intensive line: encode to maximize stored '1's.
  const u64 whole_line_dirs = popcount(line) * 2 < 512 ? 0xFF : 0x00;
  u64 partitioned_dirs = 0;
  for (usize p = 0; p < 8; ++p) {
    if (ones[p] * 2 < 64) partitioned_dirs |= 1ULL << p;
  }

  Table cmp({"encoding", "direction bits", "stored 1s", "read cost"});
  cmp.add_row({"raw (no encoding)", "00000000",
               std::to_string(popcount(line)),
               line_read_cost(ps, cell, line, 0).to_string()});
  cmp.add_row({"whole-line invert",
               whole_line_dirs == 0xFF ? "11111111" : "00000000",
               std::to_string(stored_ones(ps, line, whole_line_dirs)),
               line_read_cost(ps, cell, line, whole_line_dirs).to_string()});
  std::string dir_str;
  for (usize p = 8; p-- > 0;) dir_str += ((partitioned_dirs >> p) & 1) ? '1' : '0';
  cmp.add_row({"partitioned (K=8)", dir_str,
               std::to_string(stored_ones(ps, line, partitioned_dirs)),
               line_read_cost(ps, cell, line, partitioned_dirs).to_string()});
  std::cout << cmp.render() << "\n";
  std::cout << "The whole-line invert needlessly flips the dense partition "
               "7; the\npartitioned encoding leaves it alone (the paper's "
               "Fig. 2 argument).\n\n";

  // Threshold table (Algorithm 1 / Eq. 6) for W = 15 on 64-bit partitions.
  std::cout << "Threshold table, W = 15, 64-bit partitions\n"
            << "------------------------------------------\n";
  const ThresholdTable tt(cell, 15, 64);
  std::cout << "Th_rd (Eq. 3) = " << std::fixed << std::setprecision(2)
            << tt.th_rd() << " (roughly W/2, as the paper notes)\n\n";
  Table th({"Wr_num", "pattern", "E_save/bit", "Th_bit1num"});
  for (usize wr = 0; wr <= 15; ++wr) {
    th.add_row({std::to_string(wr),
                tt.is_write_intensive(wr) ? "write-intensive" : "read-intensive",
                tt.e_save(wr).to_string(),
                Table::num(tt.threshold(wr), 1)});
  }
  std::cout << th.render();
  std::cout << "\nA switch fires when bit1num crosses Th_bit1num in the "
               "pattern's direction\n(below it for read-intensive windows, "
               "above it for write-intensive ones).\n";
  return 0;
}
