#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace cnt::lint {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

[[nodiscard]] bool excluded(const std::string& path,
                            const std::vector<std::string>& excludes) {
  for (const auto& e : excludes) {
    if (!e.empty() && path.find(e) != std::string::npos) return true;
  }
  return false;
}

void lint_one(const std::string& path, const LintOptions& opts,
              LintReport& report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    report.errors.push_back("cannot read " + path);
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const SourceFile file = lex_file(path, buf.str());
  run_rules(file, opts.rules, report.findings);
  ++report.files_scanned;
}

void json_escape(std::string_view s, std::ostream& os) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

bool lintable_file(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  for (const char* e : {".hpp", ".cpp", ".h", ".cc", ".cxx", ".hh", ".ipp"}) {
    if (ext == e) return true;
  }
  return false;
}

std::vector<Finding> lint_buffer(std::string path, std::string_view content,
                                 const std::vector<std::string>& rules) {
  const SourceFile file = lex_file(std::move(path), content);
  std::vector<Finding> out;
  run_rules(file, rules, out);
  std::sort(out.begin(), out.end());
  return out;
}

LintReport run_lint(const LintOptions& opts) {
  LintReport report;
  for (const auto& root : opts.paths) {
    std::error_code ec;
    const fs::file_status st = fs::status(root, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      report.errors.push_back("no such path: " + root);
      continue;
    }
    if (fs::is_regular_file(st)) {
      if (!excluded(root, opts.excludes)) lint_one(root, opts, report);
      continue;
    }
    fs::recursive_directory_iterator it(
        root, fs::directory_options::skip_permission_denied, ec);
    if (ec) {
      report.errors.push_back("cannot walk " + root + ": " + ec.message());
      continue;
    }
    for (const auto end = fs::recursive_directory_iterator(); it != end;
         it.increment(ec)) {
      if (ec) {
        report.errors.push_back("walk error under " + root + ": " +
                                ec.message());
        break;
      }
      const fs::path& p = it->path();
      if (it->is_directory()) {
        if (skip_dir(p) || excluded(p.string(), opts.excludes)) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string s = p.string();
      if (!lintable_file(s) || excluded(s, opts.excludes)) continue;
      lint_one(s, opts, report);
    }
  }
  std::sort(report.findings.begin(), report.findings.end());
  return report;
}

void write_text(const LintReport& report, std::ostream& os) {
  for (const auto& f : report.findings) {
    os << f.path << ":" << f.line << ": " << f.rule << ": " << f.message
       << "\n";
  }
  for (const auto& e : report.errors) {
    os << "cnt-lint: error: " << e << "\n";
  }
  os << "cnt-lint: " << report.findings.size() << " finding(s) in "
     << report.files_scanned << " file(s)\n";
}

void write_json(const LintReport& report, std::ostream& os) {
  os << "{\"schema\":\"cnt-lint-v1\",\"files_scanned\":" << report.files_scanned
     << ",\"count\":" << report.findings.size() << ",\"findings\":[";
  bool first = true;
  for (const auto& f : report.findings) {
    os << (first ? "" : ",") << "{\"file\":\"";
    json_escape(f.path, os);
    os << "\",\"line\":" << f.line << ",\"rule\":\"" << f.rule
       << "\",\"name\":\"" << f.name << "\",\"message\":\"";
    json_escape(f.message, os);
    os << "\"}";
    first = false;
  }
  os << "],\"errors\":[";
  first = true;
  for (const auto& e : report.errors) {
    os << (first ? "" : ",") << "\"";
    json_escape(e, os);
    os << "\"";
    first = false;
  }
  os << "]}\n";
}

}  // namespace cnt::lint
