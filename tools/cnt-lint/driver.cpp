#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

namespace cnt::lint {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

[[nodiscard]] bool excluded(const std::string& path,
                            const std::vector<std::string>& excludes) {
  for (const auto& e : excludes) {
    if (!e.empty() && path.find(e) != std::string::npos) return true;
  }
  return false;
}

void lex_one(const std::string& path, std::vector<SourceFile>& files,
             std::vector<std::string>& errors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    errors.push_back("cannot read " + path);
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  files.push_back(lex_file(path, buf.str()));
}

/// Pass 1: walk `opts.paths` and lex every lintable file.
[[nodiscard]] std::vector<SourceFile> collect_sources(
    const LintOptions& opts, std::vector<std::string>& errors) {
  std::vector<SourceFile> files;
  for (const auto& root : opts.paths) {
    std::error_code ec;
    const fs::file_status st = fs::status(root, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      errors.push_back("no such path: " + root);
      continue;
    }
    if (fs::is_regular_file(st)) {
      if (!excluded(root, opts.excludes)) lex_one(root, files, errors);
      continue;
    }
    fs::recursive_directory_iterator it(
        root, fs::directory_options::skip_permission_denied, ec);
    if (ec) {
      errors.push_back("cannot walk " + root + ": " + ec.message());
      continue;
    }
    for (const auto end = fs::recursive_directory_iterator(); it != end;
         it.increment(ec)) {
      if (ec) {
        errors.push_back("walk error under " + root + ": " + ec.message());
        break;
      }
      const fs::path& p = it->path();
      if (it->is_directory()) {
        if (skip_dir(p) || excluded(p.string(), opts.excludes)) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string s = p.string();
      if (!lintable_file(s) || excluded(s, opts.excludes)) continue;
      lex_one(s, files, errors);
    }
  }
  return files;
}

void json_escape(std::string_view s, std::ostream& os) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

bool lintable_file(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  for (const char* e : {".hpp", ".cpp", ".h", ".cc", ".cxx", ".hh", ".ipp"}) {
    if (ext == e) return true;
  }
  return false;
}

std::vector<Finding> lint_buffer(std::string path, std::string_view content,
                                 const std::vector<std::string>& rules) {
  const SourceFile file = lex_file(std::move(path), content);
  std::vector<Finding> out;
  run_rules(file, rules, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> audit_suppressions(const std::vector<SourceFile>& files) {
  // Map rule id -> the tag that silences it. Only catalog tags are
  // audited: marker comments allow trailing prose
  // (`// cnt-lint: narrow-ok checked two lines up`), and prose words
  // must not read as stale suppressions.
  std::unordered_map<std::string, std::string> tag_of_rule;
  std::set<std::string, std::less<>> known_tags;
  for (const RuleInfo& r : rule_catalog()) {
    tag_of_rule.emplace(r.id, r.suppression);
    known_tags.insert(r.suppression);
  }

  TreeContext ctx;
  for (const SourceFile& f : files) harvest_context(f, ctx);

  std::vector<Finding> out;
  for (const SourceFile& f : files) {
    if (f.suppressions.empty()) continue;
    // Re-run with suppressions ignored: what *would* each marker silence?
    SourceFile bare = f;
    bare.suppressions.clear();
    std::vector<Finding> raw;
    run_rules(bare, {}, ctx, raw);

    // used[(line, tag)]: some raw finding on `line` or `line + 1` belongs
    // to the rule this tag silences (a marker covers its own line and
    // the one below).
    std::set<std::pair<std::uint32_t, std::string>> used;
    for (const Finding& fd : raw) {
      const auto it = tag_of_rule.find(fd.rule);
      if (it == tag_of_rule.end()) continue;
      used.emplace(fd.line, it->second);
      if (fd.line > 0) used.emplace(fd.line - 1, it->second);
    }
    for (const auto& [line, tags] : f.suppressions) {
      for (const std::string& tag : tags) {
        if (known_tags.count(tag) == 0) continue;  // prose, not a tag
        if (used.count({line, tag}) != 0) continue;
        out.push_back(Finding{
            f.path, line, "U0", "unused-suppression",
            "suppression '" + tag +
                "' silences nothing (no matching finding on this or the "
                "next line); delete the stale tag"});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

LintReport run_lint(const LintOptions& opts) {
  LintReport report;
  const std::vector<SourceFile> files =
      collect_sources(opts, report.errors);
  report.files_scanned = files.size();

  if (opts.report_unused) {
    report.findings = audit_suppressions(files);
    return report;
  }

  TreeContext ctx;
  for (const SourceFile& f : files) harvest_context(f, ctx);
  for (const SourceFile& f : files) {
    run_rules(f, opts.rules, ctx, report.findings);
  }
  std::sort(report.findings.begin(), report.findings.end());
  return report;
}

IncludeGraph build_include_graph(const LintOptions& opts) {
  IncludeGraph graph;
  const std::vector<SourceFile> files = collect_sources(opts, graph.errors);

  std::set<std::pair<std::string, std::string>> edges;
  for (const SourceFile& f : files) {
    const std::string from = layer_module_of_path(f.path);
    if (from.empty()) continue;
    for (const IncludeDirective& inc : f.includes) {
      const std::string to = layer_module_of_include(inc.target);
      if (to.empty() || to == from) continue;
      edges.emplace(from, to);
    }
  }
  graph.edges.assign(edges.begin(), edges.end());

  // Cycle check (DFS, three-color). The module set is tiny; adjacency
  // through a sorted map keeps the reported cycle deterministic.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [from, to] : graph.edges) adj[from].push_back(to);
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    for (const std::string& next : adj[node]) {
      if (color[next] == 1) {
        // Trim the stack down to the cycle entry point.
        const auto entry = std::find(stack.begin(), stack.end(), next);
        graph.cycle.assign(entry, stack.end());
        graph.cycle.push_back(next);
        return true;
      }
      if (color[next] == 0 && visit(next)) return true;
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  };
  for (const auto& [node, _] : adj) {
    if (color[node] == 0 && visit(node)) break;
  }
  return graph;
}

void write_dot(const IncludeGraph& graph, std::ostream& os) {
  std::set<std::string> nodes;
  for (const auto& [from, to] : graph.edges) {
    nodes.insert(from);
    nodes.insert(to);
  }
  os << "digraph cnt_includes {\n";
  os << "  // edges point from includer down to includee; rule R8 requires\n";
  os << "  // every edge to stay at or below the includer's layer\n";
  os << "  rankdir=BT;\n";
  for (const std::string& n : nodes) {
    os << "  \"" << n << "\" [label=\"" << n << "\\nL" << layer_rank(n)
       << "\"];\n";
  }
  for (const auto& [from, to] : graph.edges) {
    os << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  os << "}\n";
}

void write_text(const LintReport& report, std::ostream& os) {
  for (const auto& f : report.findings) {
    os << f.path << ":" << f.line << ": " << f.rule << ": " << f.message
       << "\n";
  }
  for (const auto& e : report.errors) {
    os << "cnt-lint: error: " << e << "\n";
  }
  os << "cnt-lint: " << report.findings.size() << " finding(s) in "
     << report.files_scanned << " file(s)\n";
}

void write_json(const LintReport& report, std::ostream& os) {
  os << "{\"schema\":\"cnt-lint-v1\",\"files_scanned\":" << report.files_scanned
     << ",\"count\":" << report.findings.size() << ",\"findings\":[";
  bool first = true;
  for (const auto& f : report.findings) {
    os << (first ? "" : ",") << "{\"file\":\"";
    json_escape(f.path, os);
    os << "\",\"line\":" << f.line << ",\"rule\":\"" << f.rule
       << "\",\"name\":\"" << f.name << "\",\"message\":\"";
    json_escape(f.message, os);
    os << "\"}";
    first = false;
  }
  os << "],\"errors\":[";
  first = true;
  for (const auto& e : report.errors) {
    os << (first ? "" : ",") << "\"";
    json_escape(e, os);
    os << "\"";
    first = false;
  }
  os << "]}\n";
}

}  // namespace cnt::lint
