// cnt-lint: in-tree determinism/invariant static analyzer.
//
//   cnt-lint [options] <path>...
//
//   --format=text|json             report format (default text)
//   --rule=RN                      run only rule RN (repeatable; default all)
//   --exclude=SUBSTR               skip paths containing SUBSTR (repeatable)
//   --list-rules                   print the rule catalog and exit
//   --report-unused-suppressions   audit mode: report `// cnt-lint:` tags
//                                  that silence nothing (rule id U0);
//                                  incompatible with --rule
//   --dump-include-graph=dot       print the module-level include graph as
//                                  Graphviz dot; exits 1 if the graph has
//                                  a cycle
//
// Exit codes: 0 clean, 1 findings/cycle (or unreadable inputs), 2 usage
// error. Rule catalog and suppression syntax: docs/static_analysis.md.
#include <iostream>
#include <string>
#include <string_view>

#include "driver.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: cnt-lint [--format=text|json] [--rule=RN]... "
        "[--exclude=SUBSTR]... [--list-rules] "
        "[--report-unused-suppressions] [--dump-include-graph=dot] "
        "<path>...\n";
}

}  // namespace

int main(int argc, char** argv) {
  cnt::lint::LintOptions opts;
  bool json = false;
  bool dump_graph = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& r : cnt::lint::rule_catalog()) {
        std::cout << r.id << "  " << r.name << "  (suppress: // cnt-lint: "
                  << r.suppression << ")\n    " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--report-unused-suppressions") {
      opts.report_unused = true;
      continue;
    }
    if (arg.rfind("--dump-include-graph=", 0) == 0) {
      const std::string_view fmt = arg.substr(21);
      if (fmt != "dot") {
        std::cerr << "cnt-lint: unknown graph format '" << fmt
                  << "' (only 'dot' is supported)\n";
        return 2;
      }
      dump_graph = true;
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      const std::string_view fmt = arg.substr(9);
      if (fmt == "json") {
        json = true;
      } else if (fmt == "text") {
        json = false;
      } else {
        std::cerr << "cnt-lint: unknown format '" << fmt << "'\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      opts.rules.emplace_back(arg.substr(7));
      continue;
    }
    if (arg.rfind("--exclude=", 0) == 0) {
      opts.excludes.emplace_back(arg.substr(10));
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "cnt-lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
    opts.paths.emplace_back(arg);
  }
  if (opts.paths.empty()) {
    usage(std::cerr);
    return 2;
  }
  if (opts.report_unused && !opts.rules.empty()) {
    std::cerr << "cnt-lint: --report-unused-suppressions needs every rule "
                 "enabled; drop --rule\n";
    return 2;
  }
  for (const auto& r : opts.rules) {
    bool known = false;
    for (const auto& info : cnt::lint::rule_catalog()) {
      if (r == info.id) known = true;
    }
    if (!known) {
      std::cerr << "cnt-lint: unknown rule '" << r << "' (see --list-rules)\n";
      return 2;
    }
  }

  if (dump_graph) {
    const cnt::lint::IncludeGraph graph =
        cnt::lint::build_include_graph(opts);
    cnt::lint::write_dot(graph, std::cout);
    for (const auto& e : graph.errors) {
      std::cerr << "cnt-lint: error: " << e << "\n";
    }
    if (!graph.cycle.empty()) {
      std::cerr << "cnt-lint: include-graph cycle:";
      for (const auto& m : graph.cycle) std::cerr << " " << m;
      std::cerr << "\n";
      return 1;
    }
    return graph.errors.empty() ? 0 : 1;
  }

  const cnt::lint::LintReport report = cnt::lint::run_lint(opts);
  if (json) {
    cnt::lint::write_json(report, std::cout);
  } else {
    cnt::lint::write_text(report, std::cout);
  }
  return (report.findings.empty() && report.errors.empty()) ? 0 : 1;
}
