// cnt-lint driver: file discovery, rule execution, report formatting.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "rules.hpp"

namespace cnt::lint {

struct LintOptions {
  std::vector<std::string> paths;     ///< files or directories to scan
  std::vector<std::string> excludes;  ///< skip paths containing any substring
  std::vector<std::string> rules;     ///< enabled rule ids; empty = all
  /// Audit mode: instead of rule findings, report `// cnt-lint:` tags
  /// that silence nothing ("U0"). Requires all rules enabled.
  bool report_unused = false;
};

struct LintReport {
  std::vector<Finding> findings;  ///< sorted by (path, line, rule)
  std::size_t files_scanned = 0;
  std::vector<std::string> errors;  ///< unreadable paths etc.
};

/// True for the extensions cnt-lint understands (.hpp/.cpp/.h/.cc/...).
[[nodiscard]] bool lintable_file(const std::string& path);

/// Lint one in-memory buffer (tests use this to avoid disk fixtures).
/// The TreeContext (R9 guards, R11 Result functions) is harvested from
/// the buffer itself.
[[nodiscard]] std::vector<Finding> lint_buffer(
    std::string path, std::string_view content,
    const std::vector<std::string>& rules = {});

/// Walk `opts.paths`, lint every source file found, return the sorted
/// report. Directories are scanned recursively; hidden and build*
/// directories are skipped. Runs in two passes: pass 1 lexes every file
/// and harvests the TreeContext, pass 2 runs the rules -- so a
/// guarded-by annotation in a header governs its .cpp regardless of
/// scan order.
[[nodiscard]] LintReport run_lint(const LintOptions& opts);

/// Unused-suppression audit over pre-lexed files: re-runs every rule
/// with suppressions ignored, then reports each `// cnt-lint:` tag
/// that would silence no finding on its own or the following line.
/// Findings carry rule id "U0" / name "unused-suppression".
[[nodiscard]] std::vector<Finding> audit_suppressions(
    const std::vector<SourceFile>& files);

/// Module-level include graph for `--dump-include-graph` and the DAG
/// check. Nodes are R8 layer modules; edges are deduplicated
/// (includer-module, includee-module) pairs, sorted.
struct IncludeGraph {
  std::vector<std::pair<std::string, std::string>> edges;
  /// Non-empty when the module graph has a cycle: the offending module
  /// sequence, first element repeated at the end.
  std::vector<std::string> cycle;
  std::vector<std::string> errors;  ///< unreadable paths etc.
};

/// Lex `opts.paths` and aggregate the module-level include graph.
[[nodiscard]] IncludeGraph build_include_graph(const LintOptions& opts);

/// Graphviz dot rendering of the module graph, stable output: nodes
/// labeled with their layer rank, edges sorted.
void write_dot(const IncludeGraph& graph, std::ostream& os);

/// `file:line: RULE: message` per finding plus a trailing summary line.
void write_text(const LintReport& report, std::ostream& os);

/// Machine-readable: {"schema":"cnt-lint-v1","count":N,"findings":[...]}.
void write_json(const LintReport& report, std::ostream& os);

}  // namespace cnt::lint
