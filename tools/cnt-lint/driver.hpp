// cnt-lint driver: file discovery, rule execution, report formatting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rules.hpp"

namespace cnt::lint {

struct LintOptions {
  std::vector<std::string> paths;     ///< files or directories to scan
  std::vector<std::string> excludes;  ///< skip paths containing any substring
  std::vector<std::string> rules;     ///< enabled rule ids; empty = all
};

struct LintReport {
  std::vector<Finding> findings;  ///< sorted by (path, line, rule)
  std::size_t files_scanned = 0;
  std::vector<std::string> errors;  ///< unreadable paths etc.
};

/// True for the extensions cnt-lint understands (.hpp/.cpp/.h/.cc/...).
[[nodiscard]] bool lintable_file(const std::string& path);

/// Lint one in-memory buffer (tests use this to avoid disk fixtures).
[[nodiscard]] std::vector<Finding> lint_buffer(
    std::string path, std::string_view content,
    const std::vector<std::string>& rules = {});

/// Walk `opts.paths`, lint every source file found, return the sorted
/// report. Directories are scanned recursively; hidden and build*
/// directories are skipped.
[[nodiscard]] LintReport run_lint(const LintOptions& opts);

/// `file:line: RULE: message` per finding plus a trailing summary line.
void write_text(const LintReport& report, std::ostream& os);

/// Machine-readable: {"schema":"cnt-lint-v1","count":N,"findings":[...]}.
void write_json(const LintReport& report, std::ostream& os);

}  // namespace cnt::lint
