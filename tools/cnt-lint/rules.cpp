#include "rules.hpp"

#include <algorithm>
#include <array>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace cnt::lint {

namespace {

using Tokens = std::vector<Token>;

/// Index of the punct matching `open` at `i` (must point at `open`),
/// or tokens.size() when unbalanced. Angle matching (`<`/`>`) counts a
/// `>>` token as two closers.
std::size_t match_forward(const Tokens& toks, std::size_t i,
                          std::string_view open, std::string_view close) {
  int depth = 0;
  const bool angles = (open == "<");
  for (std::size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.is_punct(open)) {
      ++depth;
    } else if (t.is_punct(close)) {
      if (--depth == 0) return j;
    } else if (angles && t.is_punct(">>")) {
      depth -= 2;
      if (depth <= 0) return j;
    } else if (angles && (t.is_punct(";") || t.is_punct("{"))) {
      return toks.size();  // not a template argument list after all
    }
  }
  return toks.size();
}

/// Index of the `(` matching the `)` at `i`, scanning backwards;
/// tokens.size() when unbalanced.
std::size_t match_backward(const Tokens& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i + 1; j-- > 0;) {
    if (toks[j].is_punct(")")) {
      ++depth;
    } else if (toks[j].is_punct("(")) {
      if (--depth == 0) return j;
    }
  }
  return toks.size();
}

bool any_ident(const Tokens& toks, std::size_t lo, std::size_t hi,
               std::string_view name) {
  for (std::size_t j = lo; j < hi && j < toks.size(); ++j) {
    if (toks[j].is_ident(name)) return true;
  }
  return false;
}

void report(const SourceFile& file, std::uint32_t line, const RuleInfo& rule,
            std::string message, std::vector<Finding>& out) {
  if (file.suppressed(line, rule.suppression)) return;
  out.push_back(
      Finding{file.path, line, rule.id, rule.name, std::move(message)});
}

// --- brace-scope model -----------------------------------------------------
//
// R9/R10 (and guard harvesting) need to know which `{ ... }` regions are
// function bodies. The opener test walks backwards from a `{`: skip
// trailing declarator qualifiers (const/noexcept/override/final/mutable,
// a trailing return type after `->`), then require a `)` whose matching
// `(` is headed by a plain identifier (or a lambda's `]`) that is not a
// control keyword. Ctor init-lists pass via their last `(...)` member
// initializer -- fine, the recorded extent is the body braces either
// way. Braced init-lists, `= {...}`, class/namespace/enum bodies and
// control-flow blocks are all rejected at the first non-declarator
// token. Parenless lambdas `[&]{...}` are deliberately NOT separate
// bodies: a cv-wait predicate then stays in its enclosing function's
// scope, where the wait's unique_lock is visible to R9.

/// One function body: token indices of its `{` and matching `}`.
struct BodyExtent {
  std::size_t open = 0;
  std::size_t close = 0;
};

bool is_function_body_open(const Tokens& toks, std::size_t i) {
  static const std::unordered_set<std::string_view> kQualifier = {
      "const", "noexcept", "override", "final", "mutable"};
  static const std::unordered_set<std::string_view> kControl = {
      "if", "for", "while", "switch", "catch", "return"};
  bool arrow = false;     // saw `->`: tokens before it are a return type
  bool nonqual = false;   // saw tokens that are not plain qualifiers
  for (std::size_t j = i; j-- > 0;) {
    const Token& t = toks[j];
    if (t.is_punct(")")) {
      if (nonqual && !arrow) return false;
      const std::size_t open = match_backward(toks, j);
      if (open == toks.size() || open == 0) return false;
      const Token& head = toks[open - 1];
      if (head.is_punct("]")) return true;  // lambda `[..](..)`
      if (head.kind != TokKind::kIdent) return false;
      if (kControl.count(head.text) != 0) return false;
      if (head.is_ident("constexpr") && open >= 2 &&
          toks[open - 2].is_ident("if")) {
        return false;  // if constexpr (...)
      }
      return true;
    }
    if (t.kind == TokKind::kIdent) {
      if (kQualifier.count(t.text) == 0) nonqual = true;
      continue;
    }
    if (t.is_punct("->")) {
      arrow = true;
      continue;
    }
    if (t.is_punct("::") || t.is_punct("<") || t.is_punct(">") ||
        t.is_punct(">>") || t.is_punct("*") || t.is_punct("&") ||
        t.is_punct("[[") || t.is_punct("]]") || t.is_punct("[") ||
        t.is_punct("]") || t.is_punct("...")) {
      nonqual = true;
      continue;
    }
    return false;
  }
  return false;
}

/// All function-body extents, in token order. Nested (parenful-lambda)
/// bodies are listed too, after their enclosing body.
std::vector<BodyExtent> function_bodies(const Tokens& toks) {
  std::vector<BodyExtent> out;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_punct("{")) continue;
    if (!is_function_body_open(toks, i)) continue;
    const std::size_t close = match_forward(toks, i, "{", "}");
    if (close == toks.size()) continue;
    out.push_back(BodyExtent{i, close});
  }
  return out;
}

[[nodiscard]] std::string path_stem(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot != std::string_view::npos &&
      (slash == std::string_view::npos || dot > slash)) {
    return std::string(path.substr(0, dot));
  }
  return std::string(path);
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"R1", "nondeterminism", "nondet-ok",
       "nondeterminism primitive outside src/common/rng.*"},
      {"R2", "global-state", "global-ok",
       "mutable namespace-scope or static state"},
      {"R3", "nodiscard", "nodiscard-ok",
       "const accessor returning non-void lacks [[nodiscard]]"},
      {"R4", "narrowing", "narrow-ok",
       "narrowing cast to a <=16-bit integer without a nearby range guard"},
      {"R5", "unordered-order", "unordered-ok",
       "iteration over an unordered container feeds output"},
      {"R6", "bare-throw", "throw-ok",
       "bare throw of std::runtime_error where cnt::Error is mandatory"},
      {"R7", "raw-ofstream", "io-ok",
       "raw std::ofstream outside src/common/io.*"},
      {"R8", "include-layering", "layer-ok",
       "#include reaches a module above the includer's layer"},
      {"R9", "lock-discipline", "guard-ok",
       "guarded-by member touched without holding the named mutex"},
      {"R10", "hot-alloc", "hot-ok",
       "allocation or string construction inside a // cnt-hot function"},
      {"R11", "unchecked-result", "result-ok",
       "statement-position Result<T> call whose value is dropped"},
      {"R12", "bare-wait", "wait-ok",
       "bare sleep or unbounded cv wait outside the cancellation layer"},
  };
  return kCatalog;
}

// --- R1: nondeterminism primitives ----------------------------------------
//
// Raw entropy / wall-clock primitives make sweeps non-reproducible; all
// simulator randomness must flow through cnt::Rng (seeded xoshiro256**).
// `src/common/rng.*` itself is exempt, telemetry call sites annotate
// with `// cnt-lint: nondet-ok`.
void check_r1_nondeterminism(const SourceFile& file,
                             std::vector<Finding>& out) {
  if (file.path.find("common/rng.") != std::string::npos) return;
  static const std::unordered_set<std::string_view> kBanned = {
      "rand",          "srand",        "rand_r", "drand48",
      "lrand48",       "random_device", "system_clock"};
  const RuleInfo& rule = rule_catalog()[0];
  const Tokens& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool call_like =
        i + 1 < toks.size() && toks[i + 1].is_punct("(");
    if (kBanned.count(t.text) != 0 || (t.text == "time" && call_like)) {
      report(file, t.line, rule,
             "nondeterminism primitive '" + t.text +
                 "' (route randomness through cnt::Rng / src/common/rng.*; "
                 "suppress telemetry sites with // cnt-lint: nondet-ok)",
             out);
    }
  }
}

// --- R2: mutable static / namespace-scope state ---------------------------
//
// Mutable globals are shared across ThreadPool workers and break the
// bit-identical `--jobs N` == `--jobs 1` guarantee. Triggers on
// `static` / `inline` declarations that reach a variable terminator
// without a constness keyword. Intentional globals (e.g. registries
// guarded by a mutex) annotate with `// cnt-lint: global-ok`.
void check_r2_global_state(const SourceFile& file, std::vector<Finding>& out) {
  static const std::unordered_set<std::string_view> kConstish = {
      "const", "constexpr", "constinit"};
  static const std::unordered_set<std::string_view> kNotAVariable = {
      "namespace", "using", "typedef", "friend", "struct", "class",
      "enum",      "union", "operator", "template", "thread_local"};
  const RuleInfo& rule = rule_catalog()[1];
  const Tokens& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    const bool trigger = t.is_ident("static") || t.is_ident("inline");
    if (!trigger) continue;
    // `static inline ...` / `inline static ...`: handle the pair once.
    if (i > 0 &&
        (toks[i - 1].is_ident("static") || toks[i - 1].is_ident("inline"))) {
      continue;
    }
    bool constish = false;
    bool not_a_variable = false;
    std::size_t end = toks.size();
    std::string last_ident;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const Token& u = toks[j];
      if (u.is_punct("(")) {
        // Function declaration/definition (or paren-init; heuristic).
        not_a_variable = true;
        break;
      }
      if (u.is_punct(";") || u.is_punct("{") || u.is_punct("=")) {
        end = j;
        break;
      }
      if (u.kind == TokKind::kIdent) {
        if (kConstish.count(u.text) != 0) constish = true;
        if (kNotAVariable.count(u.text) != 0) not_a_variable = true;
        last_ident = u.text;
      }
    }
    if (constish || not_a_variable || end == toks.size()) continue;
    report(file, t.line, rule,
           "mutable static/global '" +
               (last_ident.empty() ? std::string("<unnamed>") : last_ident) +
               "' (thread-pool race hazard; make it const/constexpr, pass it "
               "explicitly, or annotate // cnt-lint: global-ok)",
           out);
  }
}

// --- R3: [[nodiscard]] on const accessors ---------------------------------
//
// Energy-ledger / journal invariants rely on read APIs whose results are
// never silently dropped: [[nodiscard]] here plus -Wunused-result at call
// sites closes the loop. Flags const-qualified member functions with a
// non-void result that lack the attribute.
void check_r3_nodiscard(const SourceFile& file, std::vector<Finding>& out) {
  const RuleInfo& rule = rule_catalog()[2];
  const Tokens& toks = file.tokens;
  static const std::unordered_set<std::string_view> kAfterConst = {
      ";", "{", "&", "&&", "=", "->"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_punct(")") || !toks[i + 1].is_ident("const")) continue;
    // The token after `const` must continue a member-function declarator.
    if (i + 2 >= toks.size()) continue;
    const Token& after = toks[i + 2];
    const bool declarator_tail =
        after.is_ident("noexcept") || after.is_ident("override") ||
        after.is_ident("final") ||
        (after.kind == TokKind::kPunct && kAfterConst.count(after.text) != 0);
    if (!declarator_tail) continue;

    const std::size_t open = match_backward(toks, i);
    if (open == toks.size() || open == 0) continue;
    const Token& name = toks[open - 1];
    if (name.kind != TokKind::kIdent) {
      // `operator()(..)` / pointer-to-member types: skip unless a plain
      // operator, which is exempt anyway.
      continue;
    }
    // Conversion/overloaded operators are exempt (comparators etc.).
    bool is_operator = false;
    for (std::size_t back = 1; back <= 3 && back < open; ++back) {
      if (toks[open - 1 - back].is_ident("operator")) is_operator = true;
    }
    if (is_operator || name.text == "operator") continue;
    // Out-of-class definition: the in-class declaration carries the
    // attribute.
    if (open >= 2 && toks[open - 2].is_punct("::")) continue;

    // Return-type region: walk back to the previous declaration boundary.
    std::size_t decl_start = 0;
    bool boundary_found = false;
    for (std::size_t j = open - 1; j-- > 0;) {
      const Token& u = toks[j];
      if (u.is_punct(";") || u.is_punct("{") || u.is_punct("}") ||
          u.is_punct(":")) {
        decl_start = j + 1;
        boundary_found = true;
        break;
      }
    }
    if (!boundary_found) decl_start = 0;
    const std::size_t region_len = (open - 1) - decl_start;
    if (region_len == 0) continue;  // no return type: not an accessor
    if (any_ident(toks, decl_start, open - 1, "nodiscard")) continue;
    if (any_ident(toks, decl_start, open - 1, "using") ||
        any_ident(toks, decl_start, open - 1, "typedef") ||
        any_ident(toks, decl_start, open - 1, "friend")) {
      continue;
    }
    // `void get() const` -- nothing to discard (unless it returns void*).
    if (any_ident(toks, decl_start, open - 1, "void")) {
      bool pointer = false;
      for (std::size_t j = decl_start; j < open - 1; ++j) {
        if (toks[j].is_punct("*")) pointer = true;
      }
      if (!pointer) continue;
    }
    // `auto f() const -> void` -- trailing void return.
    if (after.is_punct("->") ||
        (i + 3 < toks.size() && after.is_ident("noexcept") &&
         toks[i + 3].is_punct("->"))) {
      const std::size_t arrow = after.is_punct("->") ? i + 2 : i + 3;
      if (arrow + 1 < toks.size() && toks[arrow + 1].is_ident("void")) {
        continue;
      }
    }
    report(file, name.line, rule,
           "const accessor '" + name.text +
               "' returns a value but is not [[nodiscard]] (annotate it, or "
               "suppress with // cnt-lint: nodiscard-ok)",
           out);
  }
}

// --- R4: narrowing casts on energy/count types ----------------------------
//
// Silent truncation to u8/u16 corrupted trace sizes once (trace_io, PR 3);
// C-style and functional narrowing casts are banned outright, and a
// static_cast to a <=16-bit integer must sit within a few lines of a
// visible range guard (assert/clamp/min/mask/branch) or carry
// `// cnt-lint: narrow-ok`.
void check_r4_narrowing(const SourceFile& file, std::vector<Finding>& out) {
  static const std::unordered_set<std::string_view> kNarrow = {
      "u8",     "u16",     "i8",      "i16",    "int8_t", "uint8_t",
      "int16_t", "uint16_t", "char",   "short"};
  static const std::unordered_set<std::string_view> kGuardIdent = {
      "assert", "clamp",  "min",   "max",    "if",     "throw",
      "abort",  "CHECK",  "DCHECK", "Expects", "Ensures"};
  constexpr std::uint32_t kGuardWindow = 6;  // lines above the cast
  const RuleInfo& rule = rule_catalog()[3];
  const Tokens& toks = file.tokens;

  auto guarded_near = [&](std::uint32_t line) {
    const std::uint32_t lo = line > kGuardWindow ? line - kGuardWindow : 1;
    for (std::size_t j = 0; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.line < lo) continue;
      if (t.line > line) break;
      if (t.kind == TokKind::kIdent && kGuardIdent.count(t.text) != 0) {
        return true;
      }
      if (t.is_punct("%") || t.is_punct(">>")) return true;
      if (t.is_punct("&") && j + 1 < toks.size() &&
          toks[j + 1].kind == TokKind::kNumber) {
        return true;  // mask, e.g. `x & 0xff`
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // static_cast<NARROW>( ... ) without a nearby guard.
    if (t.is_ident("static_cast") && i + 4 < toks.size() &&
        toks[i + 1].is_punct("<") && toks[i + 2].kind == TokKind::kIdent &&
        kNarrow.count(toks[i + 2].text) != 0 && toks[i + 3].is_punct(">") &&
        toks[i + 4].is_punct("(")) {
      // A sole literal argument cannot overflow at runtime:
      // static_cast<u8>(0) needs no guard.
      const bool literal_arg = i + 6 < toks.size() &&
                               toks[i + 5].kind == TokKind::kNumber &&
                               toks[i + 6].is_punct(")");
      if (!literal_arg && !guarded_near(t.line)) {
        report(file, t.line, rule,
               "static_cast to '" + toks[i + 2].text +
                   "' with no visible range guard within " +
                   std::to_string(kGuardWindow) +
                   " lines (add an assert/clamp/mask, or annotate "
                   "// cnt-lint: narrow-ok)",
               out);
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || kNarrow.count(t.text) == 0) continue;
    const bool prev_is_angle = i > 0 && toks[i - 1].is_punct("<");
    // Functional cast `u8(expr)`; the template-argument position
    // (`static_cast<u8>(..)`, `vector<u8>`) is excluded above/below.
    if (!prev_is_angle && i + 1 < toks.size() && toks[i + 1].is_punct("(")) {
      report(file, t.line, rule,
             "functional-style narrowing cast '" + t.text +
                 "(...)' (use static_cast with a range guard, or brace-init "
                 "which rejects narrowing)",
             out);
      continue;
    }
    // C-style cast `(u8)expr` / `(unsigned char)expr`.
    const std::size_t type_start =
        (i > 0 && (toks[i - 1].is_ident("unsigned") ||
                   toks[i - 1].is_ident("signed")))
            ? i - 1
            : i;
    if (type_start > 0 && toks[type_start - 1].is_punct("(") &&
        i + 1 < toks.size() && toks[i + 1].is_punct(")") &&
        i + 2 < toks.size()) {
      const Token& v = toks[i + 2];
      const bool value_like = v.kind == TokKind::kIdent ||
                              v.kind == TokKind::kNumber ||
                              v.kind == TokKind::kString || v.is_punct("(");
      // `sizeof(u8)`, `alignof(u8)`: type traits, not casts.
      const bool trait = type_start >= 2 &&
                         (toks[type_start - 2].is_ident("sizeof") ||
                          toks[type_start - 2].is_ident("alignof"));
      if (value_like && !trait &&
          !(v.kind == TokKind::kIdent &&
            (v.is_ident("unsigned") || v.is_ident("signed")))) {
        report(file, t.line, rule,
               "C-style narrowing cast to '" + t.text +
                   "' (use static_cast with a range guard)",
               out);
      }
    }
  }
}

// --- R5: unordered-container iteration feeding output ---------------------
//
// unordered_{map,set} iteration order is implementation-defined; feeding
// it into CSV/JSONL/table output silently breaks byte-identical runs.
// Tracks variables (and `using` aliases) of unordered types declared in
// the same file and flags range-/iterator-for loops over them whose body
// writes output.
void check_r5_unordered_output(const SourceFile& file,
                               std::vector<Finding>& out) {
  static const std::unordered_set<std::string_view> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::unordered_set<std::string_view> kOutputIdent = {
      "add_row", "write",  "print", "printf", "fprintf",
      "emit",    "append", "dump",  "push_line"};
  const RuleInfo& rule = rule_catalog()[4];
  const Tokens& toks = file.tokens;

  // Pass 1: unordered type names (std ones + file-local aliases) and
  // variables declared with them.
  std::unordered_set<std::string> type_names;
  for (const std::string_view t : kUnorderedTypes) {
    type_names.emplace(t);
  }
  std::unordered_set<std::string> vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].is_ident("using") && i + 2 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent && toks[i + 2].is_punct("=")) {
      for (std::size_t j = i + 3; j < toks.size() && !toks[j].is_punct(";");
           ++j) {
        if (toks[j].kind == TokKind::kIdent &&
            type_names.count(toks[j].text) != 0) {
          type_names.insert(toks[i + 1].text);
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        type_names.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t after = i + 1;
    if (after < toks.size() && toks[after].is_punct("<")) {
      const std::size_t close = match_forward(toks, after, "<", ">");
      if (close == toks.size()) continue;
      after = close + 1;
    }
    while (after < toks.size() &&
           (toks[after].is_punct("&") || toks[after].is_punct("*") ||
            toks[after].is_ident("const"))) {
      ++after;
    }
    if (after < toks.size() && toks[after].kind == TokKind::kIdent &&
        !toks[after].is_ident("const")) {
      vars.insert(toks[after].text);
    }
  }
  if (vars.empty()) return;

  // Pass 2: for-loops over those variables whose body emits output.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident("for") || !toks[i + 1].is_punct("(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == toks.size()) continue;

    std::string iterated;
    // Range-for: `for (decl : expr)` with `:` at depth 1.
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (toks[j].is_punct("(")) ++depth;
      if (toks[j].is_punct(")")) --depth;
      if (depth == 1 && toks[j].is_punct(":")) {
        colon = j;
        break;
      }
    }
    if (colon != 0) {
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == TokKind::kIdent && vars.count(toks[j].text) != 0) {
          iterated = toks[j].text;
          break;
        }
      }
    } else {
      // Iterator-for: `for (auto it = m.begin(); ...)`.
      for (std::size_t j = i + 2; j + 2 < close; ++j) {
        if (toks[j].kind == TokKind::kIdent && vars.count(toks[j].text) != 0 &&
            toks[j + 1].is_punct(".") && toks[j + 2].is_ident("begin")) {
          iterated = toks[j].text;
          break;
        }
      }
    }
    if (iterated.empty()) continue;

    std::size_t body_end;
    if (close + 1 < toks.size() && toks[close + 1].is_punct("{")) {
      body_end = match_forward(toks, close + 1, "{", "}");
    } else {
      body_end = close + 1;
      while (body_end < toks.size() && !toks[body_end].is_punct(";")) {
        ++body_end;
      }
    }
    bool writes_output = false;
    for (std::size_t j = close + 1; j < body_end && j < toks.size(); ++j) {
      if (toks[j].is_punct("<<") ||
          (toks[j].kind == TokKind::kIdent &&
           kOutputIdent.count(toks[j].text) != 0)) {
        writes_output = true;
        break;
      }
    }
    if (!writes_output) continue;
    report(file, toks[i].line, rule,
           "iteration over unordered container '" + iterated +
               "' feeds output; order is unspecified -- collect and sort "
               "keys first (or annotate // cnt-lint: unordered-ok)",
           out);
  }
}

// --- R6: bare std::runtime_error in taxonomy-migrated subsystems ----------
//
// src/common, src/trace and src/exec report failures through the
// structured taxonomy (cnt::Error / cnt::ValueError, common/error.hpp)
// so every message carries what/where/hint. A bare
// `throw std::runtime_error(...)` there loses all three fields and
// regresses docs/error_handling.md; deliberate exceptions annotate with
// `// cnt-lint: throw-ok`. Other directories (examples, benches, tests)
// are out of scope.
void check_r6_bare_throw(const SourceFile& file, std::vector<Finding>& out) {
  const bool in_scope = file.path.find("src/common") != std::string::npos ||
                        file.path.find("src/trace") != std::string::npos ||
                        file.path.find("src/exec") != std::string::npos;
  if (!in_scope) return;
  const RuleInfo& rule = rule_catalog()[5];
  const Tokens& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident("throw")) continue;
    std::size_t j = i + 1;
    if (j + 1 < toks.size() && toks[j].is_ident("std") &&
        toks[j + 1].is_punct("::")) {
      j += 2;
    }
    if (j + 1 < toks.size() && toks[j].is_ident("runtime_error") &&
        toks[j + 1].is_punct("(")) {
      report(file, toks[i].line, rule,
             "bare 'throw std::runtime_error' in a taxonomy-migrated "
             "subsystem; throw cnt::Error with .at()/.hint() instead "
             "(common/error.hpp), or annotate // cnt-lint: throw-ok",
             out);
    }
  }
}

// --- R7: raw std::ofstream outside the durable-I/O layer ------------------
//
// std::ofstream reports nothing on a failed write and nothing on a failed
// close: an artifact written through it can be silently truncated by a
// full disk and still parse (docs/crash_consistency.md). Every writer of
// a durable artifact must go through cnt::io (DurableFile for
// incremental journals, AtomicFileWriter for publish-once files), which
// is why the wrapper module itself is the only exemption. Deliberate
// uses -- tests fabricating corrupt inputs, throwaway debug dumps --
// annotate with `// cnt-lint: io-ok`.
void check_r7_raw_ofstream(const SourceFile& file, std::vector<Finding>& out) {
  if (file.path.find("common/io.") != std::string::npos) return;
  const RuleInfo& rule = rule_catalog()[6];
  const Tokens& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident("ofstream")) continue;
    report(file, toks[i].line, rule,
           "raw std::ofstream bypasses the durable-I/O layer; write "
           "artifacts through io::AtomicFileWriter or io::DurableFile "
           "(common/io.hpp), or annotate // cnt-lint: io-ok",
           out);
  }
}

// --- R8: include-layering DAG ---------------------------------------------
//
// The simulator's modules form a strict layering (docs/DESIGN.md):
//
//   layer 0  common                      (types, rng, io, error, ...)
//   layer 1  device, energy, cnt         (physics + encoding kernels)
//   layer 2  cache                       (functional arrays)
//   layer 3  trace, fault                (workloads, injection)
//   layer 4  sim                         (runners, sweeps)
//   layer 5  exec                        (thread pool, engine)
//   layer 6  bench, examples, tools, tests  (top of stack)
//
// A file may include only modules at or below its own layer, and
// src/common may include nothing but itself: that keeps the include
// graph a DAG whose edges all point downwards, so a layer can be built,
// tested and reasoned about without the layers above it. Interfaces
// needed "upwards" are inverted instead (e.g. cnt/direction_hook.hpp
// lets the encoding policy talk to the fault campaign without seeing
// fault headers). Deliberate violations annotate `// cnt-lint: layer-ok`
// on the include line.

namespace {

struct LayerModule {
  std::string_view name;
  int rank;
};

constexpr std::array<LayerModule, 13> kLayers = {{
    {"common", 0},
    {"device", 1},
    {"energy", 1},
    {"cnt", 1},
    {"cache", 2},
    {"trace", 3},
    {"fault", 3},
    {"sim", 4},
    {"exec", 5},
    {"bench", 6},
    {"examples", 6},
    {"tools", 6},
    {"tests", 6},
}};

/// True when `path` contains `dir` as a whole path component sequence,
/// i.e. "<prefix>/dir/" or "dir/" at the start.
[[nodiscard]] bool has_component(std::string_view path, std::string_view dir) {
  const std::string needle = std::string(dir) + "/";
  std::size_t pos = path.find(needle);
  while (pos != std::string_view::npos) {
    if (pos == 0 || path[pos - 1] == '/') return true;
    pos = path.find(needle, pos + 1);
  }
  return false;
}

}  // namespace

int layer_rank(std::string_view module) {
  for (const LayerModule& m : kLayers) {
    if (m.name == module) return m.rank;
  }
  return -1;
}

std::string layer_module_of_path(std::string_view path) {
  for (const LayerModule& m : kLayers) {
    if (m.rank == 6) continue;  // src modules need the src/ prefix
    if (has_component(path, "src") &&
        path.find("src/" + std::string(m.name) + "/") !=
            std::string_view::npos) {
      return std::string(m.name);
    }
  }
  for (const LayerModule& m : kLayers) {
    if (m.rank == 6 && has_component(path, m.name)) {
      return std::string(m.name);
    }
  }
  return "";
}

std::string layer_module_of_include(std::string_view target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string_view::npos) return "";
  const std::string_view first = target.substr(0, slash);
  const int rank = layer_rank(first);
  if (rank < 0 || rank == 6) return "";  // only src modules are targets
  return std::string(first);
}

void check_r8_layering(const SourceFile& file, std::vector<Finding>& out) {
  const RuleInfo& rule = rule_catalog()[7];
  const std::string from = layer_module_of_path(file.path);
  const int from_rank = layer_rank(from);
  if (from_rank < 0) return;  // outside the ranked tree
  for (const IncludeDirective& inc : file.includes) {
    const std::string to = layer_module_of_include(inc.target);
    if (to.empty()) continue;  // relative / third-party include
    const int to_rank = layer_rank(to);
    if (from == "common" && to != "common") {
      report(file, inc.line, rule,
             "src/common must not include other src modules, but includes \"" +
                 inc.target +
                 "\" (move the shared type down into common/, or annotate "
                 "// cnt-lint: layer-ok)",
             out);
    } else if (to_rank > from_rank) {
      report(file, inc.line, rule,
             "include of \"" + inc.target + "\" reaches layer-" +
                 std::to_string(to_rank) + " module '" + to + "' from layer-" +
                 std::to_string(from_rank) + " module '" + from +
                 "' (invert the dependency with an interface, or annotate "
                 "// cnt-lint: layer-ok)",
             out);
    }
  }
}

// --- R9: lock discipline on guarded-by members ----------------------------
//
// Shared state in the execution engine is documented with
// `// cnt-lint: guarded-by(<mutex>)` on the member's declaration (same
// line or the line above). R9 then enforces the documentation: every
// member-ish use of that name (trailing-underscore identifier, or one
// reached via `.`/`->`) inside a function body must have a
// lock_guard/unique_lock/scoped_lock naming that mutex declared in an
// enclosing scope of the same body. The model is lexical, per file:
// annotations on class members govern the declaring header and its
// paired .cpp (same path stem); annotations inside a function body
// govern that body only. Deliberately unlocked uses (e.g. reads after
// all workers joined) annotate `// cnt-lint: guard-ok`.
void check_r9_lock_discipline(const SourceFile& file, const TreeContext& ctx,
                              std::vector<Finding>& out) {
  if (file.path.find("src/") == std::string::npos) return;
  const std::string stem = path_stem(file.path);
  std::vector<const GuardEntry*> guards;
  for (const GuardEntry& g : ctx.guards) {
    if (g.local ? (g.path == file.path) : (g.stem == stem)) {
      guards.push_back(&g);
    }
  }
  if (guards.empty()) return;

  static const std::unordered_set<std::string_view> kLockTypes = {
      "lock_guard", "unique_lock", "scoped_lock"};
  const RuleInfo& rule = rule_catalog()[8];
  const Tokens& toks = file.tokens;
  const std::vector<BodyExtent> bodies = function_bodies(toks);
  std::unordered_map<std::size_t, std::size_t> nested;  // open -> close
  for (const BodyExtent& b : bodies) nested.emplace(b.open, b.close);

  std::unordered_set<std::string> reported;  // "line:member" dedup
  for (const BodyExtent& b : bodies) {
    int depth = 1;
    std::vector<std::pair<int, std::string>> locked;  // (decl depth, name)
    for (std::size_t i = b.open + 1; i < b.close; ++i) {
      // A nested parenful lambda is its own body: scan it in its own
      // pass (it may outlive the locks held here).
      const auto child = nested.find(i);
      if (child != nested.end()) {
        i = child->second;
        continue;
      }
      const Token& t = toks[i];
      if (t.is_punct("{")) {
        ++depth;
        continue;
      }
      if (t.is_punct("}")) {
        --depth;
        while (!locked.empty() && locked.back().first > depth) {
          locked.pop_back();
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;

      // Lock declaration: `std::lock_guard[<...>] name(args...)`; every
      // identifier in the args is treated as locked, so `lk(r.mu)`
      // covers both `r` and `mu` spellings.
      if (kLockTypes.count(t.text) != 0) {
        std::size_t j = i + 1;
        if (j < b.close && toks[j].is_punct("<")) {
          const std::size_t close_angle = match_forward(toks, j, "<", ">");
          if (close_angle != toks.size()) j = close_angle + 1;
        }
        if (j + 1 < b.close && toks[j].kind == TokKind::kIdent &&
            toks[j + 1].is_punct("(")) {
          const std::size_t close_paren = match_forward(toks, j + 1, "(", ")");
          if (close_paren != toks.size()) {
            for (std::size_t k = j + 2; k < close_paren; ++k) {
              if (toks[k].kind == TokKind::kIdent) {
                locked.emplace_back(depth, toks[k].text);
              }
            }
            i = close_paren;
          }
        }
        continue;
      }

      for (const GuardEntry* g : guards) {
        if (t.text != g->member) continue;
        if (t.line == g->decl_line && file.path == g->path) continue;
        if (g->local &&
            (t.line < g->scope_first_line || t.line > g->scope_last_line)) {
          continue;
        }
        // Member guards only bind member-ish uses (trailing underscore
        // or `.`/`->` access) so an unrelated local sharing the name in
        // the paired file is not captured. A local guard is unambiguous
        // inside its own extent and binds every use.
        const bool memberish =
            g->local || (!t.text.empty() && t.text.back() == '_') ||
            (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("->"));
        if (!memberish) continue;
        bool held = false;
        for (const auto& [d, name] : locked) {
          if (name == g->mutex_name) {
            held = true;
            break;
          }
        }
        if (!held) {
          const std::string key =
              std::to_string(t.line) + ":" + g->member;
          if (reported.insert(key).second) {
            report(file, t.line, rule,
                   "'" + g->member + "' is guarded-by(" + g->mutex_name +
                       ") but no lock on '" + g->mutex_name +
                       "' is held in an enclosing scope (take a "
                       "lock_guard/unique_lock, or annotate "
                       "// cnt-lint: guard-ok)",
                   out);
          }
        }
        break;
      }
    }
  }
}

// --- R10: allocation ban in // cnt-hot functions --------------------------
//
// The data-oriented hot path (docs/performance.md) must not allocate:
// a single push_back in the probe loop re-introduces the malloc traffic
// the scratch buffers exist to avoid. Functions whose definition follows
// a `// cnt-hot` marker (within a few lines, so the marker sits above
// the signature) are scanned for operator new, make_unique/make_shared,
// growth calls (push_back/emplace_back/resize/reserve), std::to_string
// and std::string construction. Throw statements are exempt: an error
// path that allocates its message is fine, it is off the hot path by
// definition. Cold setup inside a hot function annotates
// `// cnt-lint: hot-ok`.
void check_r10_hot_alloc(const SourceFile& file, std::vector<Finding>& out) {
  if (file.hot_lines.empty()) return;
  constexpr std::uint32_t kMarkerWindow = 12;  // lines marker -> body `{`
  static const std::unordered_set<std::string_view> kBannedCalls = {
      "make_unique", "make_shared", "push_back", "emplace_back",
      "resize",      "reserve",     "to_string"};
  const RuleInfo& rule = rule_catalog()[9];
  const Tokens& toks = file.tokens;
  const std::vector<BodyExtent> bodies = function_bodies(toks);

  for (const std::uint32_t hot : file.hot_lines) {
    const BodyExtent* body = nullptr;
    for (const BodyExtent& b : bodies) {
      const std::uint32_t open_line = toks[b.open].line;
      if (open_line >= hot && open_line <= hot + kMarkerWindow) {
        body = &b;
        break;
      }
    }
    if (body == nullptr) continue;  // dangling marker: nothing to scan

    for (std::size_t i = body->open + 1; i < body->close; ++i) {
      const Token& t = toks[i];
      // Throw statements may allocate: skip to the terminating `;`.
      if (t.is_ident("throw")) {
        int nest = 0;
        while (i < body->close) {
          const Token& u = toks[i];
          if (u.is_punct("(") || u.is_punct("{")) ++nest;
          if (u.is_punct(")") || u.is_punct("}")) --nest;
          if (u.is_punct(";") && nest <= 0) break;
          ++i;
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      const bool call_like = i + 1 < toks.size() &&
                             (toks[i + 1].is_punct("(") ||
                              toks[i + 1].is_punct("<") ||
                              toks[i + 1].is_punct("{"));
      if (t.text == "new") {
        report(file, t.line, rule,
               "operator new inside a // cnt-hot function (preallocate in "
               "setup, or annotate // cnt-lint: hot-ok)",
               out);
        continue;
      }
      if (kBannedCalls.count(t.text) != 0 && call_like) {
        report(file, t.line, rule,
               "'" + t.text +
                   "' inside a // cnt-hot function may allocate (size "
                   "scratch buffers in setup, or annotate "
                   "// cnt-lint: hot-ok)",
               out);
        continue;
      }
      if (t.text == "string" && i + 1 < toks.size() &&
          (toks[i + 1].is_punct("(") || toks[i + 1].is_punct("{") ||
           toks[i + 1].kind == TokKind::kIdent)) {
        report(file, t.line, rule,
               "std::string construction inside a // cnt-hot function "
               "(use string_view / preallocated buffers, or annotate "
               "// cnt-lint: hot-ok)",
               out);
      }
    }
  }
}

// --- R11: dropped Result<T> values ----------------------------------------
//
// cnt::Result<T> is the no-throw error channel (common/error.hpp); its
// class-level [[nodiscard]] is defeated by patterns the compiler cannot
// see through (macro wrappers, comma operators) and by builds with
// warnings off. R11 closes the gap structurally: calls to functions
// *declared* to return Result<...> anywhere in the scanned tree are
// flagged when they sit in statement position with the value neither
// bound, returned, passed on, nor `.or_throw()`'d. Intentional
// fire-and-forget calls annotate `// cnt-lint: result-ok`.
void check_r11_unchecked_result(const SourceFile& file, const TreeContext& ctx,
                                std::vector<Finding>& out) {
  if (ctx.result_functions.empty()) return;
  const RuleInfo& rule = rule_catalog()[10];
  const Tokens& toks = file.tokens;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || !toks[i + 1].is_punct("(")) continue;
    if (ctx.result_functions.count(t.text) == 0) continue;
    // Walk back over `ident::` qualification to the statement head.
    std::size_t k = i;
    while (k >= 2 && toks[k - 1].is_punct("::") &&
           toks[k - 2].kind == TokKind::kIdent) {
      k -= 2;
    }
    if (k == 0) continue;
    const Token& prev = toks[k - 1];
    // `obj.call(...)` / assignments / returns all consume the value.
    if (!(prev.is_punct(";") || prev.is_punct("{") || prev.is_punct("}"))) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == toks.size() || close + 1 >= toks.size()) continue;
    if (toks[close + 1].is_punct(";")) {
      report(file, t.line, rule,
             "result of '" + t.text +
                 "(...)' (returns cnt::Result) is dropped; bind it, return "
                 "it, or call .or_throw() (annotate intentional "
                 "fire-and-forget with // cnt-lint: result-ok)",
             out);
    }
  }
}

// --- context harvesting ----------------------------------------------------

void harvest_context(const SourceFile& file, TreeContext& ctx) {
  const Tokens& toks = file.tokens;

  // Result<T>-returning declarations: `Result < ... > [Qual::]name (`.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident("Result") || !toks[i + 1].is_punct("<")) continue;
    const std::size_t close = match_forward(toks, i + 1, "<", ">");
    if (close == toks.size()) continue;
    std::size_t j = close + 1;
    while (j + 2 < toks.size() && toks[j].kind == TokKind::kIdent &&
           toks[j + 1].is_punct("::")) {
      j += 2;
    }
    if (j + 1 < toks.size() && toks[j].kind == TokKind::kIdent &&
        toks[j + 1].is_punct("(")) {
      ctx.result_functions.insert(toks[j].text);
    }
  }

  // guarded-by annotations: resolve each to the declaration it covers
  // (tokens on the marker's line, else the first tokens below -- the
  // marker-above-the-declaration style). The guarded name is the first
  // identifier followed by a declarator terminator (`=`, `;`, `{`, `[`),
  // which skips over type names and template arguments.
  if (file.guarded_by.empty()) return;
  const std::vector<BodyExtent> bodies = function_bodies(toks);
  for (const GuardAnnotation& ann : file.guarded_by) {
    std::size_t first = toks.size();
    std::uint32_t decl_line = 0;
    for (std::size_t pass = 0; pass < 2 && first == toks.size(); ++pass) {
      for (std::size_t i = 0; i < toks.size(); ++i) {
        const bool match = pass == 0 ? toks[i].line == ann.line
                                     : toks[i].line > ann.line;
        if (match) {
          first = i;
          decl_line = toks[i].line;
          break;
        }
      }
    }
    if (first == toks.size()) continue;  // annotation at end of file

    std::string member;
    std::size_t member_tok = toks.size();
    for (std::size_t i = first;
         i + 1 < toks.size() && toks[i].line == decl_line; ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const Token& next = toks[i + 1];
      if (next.is_punct("=") || next.is_punct(";") || next.is_punct("{") ||
          next.is_punct("[")) {
        member = toks[i].text;
        member_tok = i;
        break;
      }
    }
    if (member.empty()) continue;  // not a declaration we understand

    GuardEntry entry;
    entry.member = member;
    entry.mutex_name = ann.mutex_name;
    entry.path = file.path;
    entry.stem = path_stem(file.path);
    entry.decl_line = decl_line;
    // Innermost function body containing the declaration, if any: the
    // guard is then local to that body's extent.
    for (const BodyExtent& b : bodies) {
      if (member_tok > b.open && member_tok < b.close) {
        entry.local = true;
        entry.scope_first_line = toks[b.open].line;
        entry.scope_last_line = toks[b.close].line;
      }
    }
    ctx.guards.push_back(std::move(entry));
  }
}

// --- R12: bare blocking waits ---------------------------------------------
//
// Every blocking pause in the tree must be interruptible
// (docs/robustness.md): a thread parked in std::this_thread::sleep_for
// or an unbounded condition-variable wait() outlives cancellation, the
// job watchdog and SIGINT alike. Pauses go through
// cancel::Token::wait_ms (sliced; wakes immediately on cancel()) or a
// *bounded* wait_for/wait_until whose enclosing loop re-checks a stop
// flag -- those are different identifiers and stay legal.
// src/common/cancel.* and src/common/failpoint.* implement the
// primitive and are exempt; deliberately bounded sleeps (syscall-retry
// backoff, test pacing) annotate `// cnt-lint: wait-ok`.
void check_r12_bare_wait(const SourceFile& file, std::vector<Finding>& out) {
  if (file.path.find("common/cancel.") != std::string::npos ||
      file.path.find("common/failpoint.") != std::string::npos) {
    return;
  }
  const RuleInfo& rule = rule_catalog()[11];
  const Tokens& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "sleep_for" || t.text == "sleep_until") {
      report(file, t.line, rule,
             "bare '" + t.text +
                 "' cannot be interrupted by cancellation; pause via "
                 "cancel::Token::wait_ms (common/cancel.hpp) or annotate "
                 "a deliberately bounded sleep // cnt-lint: wait-ok",
             out);
      continue;
    }
    // `cv.wait(...)` / `cv_->wait(...)`: unbounded condition-variable
    // wait, recognized by a cv-ish receiver identifier so unrelated
    // wait() members stay out of scope.
    if (t.text == "wait" && i >= 2 && i + 1 < toks.size() &&
        toks[i + 1].is_punct("(") &&
        (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("->"))) {
      const Token& recv = toks[i - 2];
      const bool cv_like = recv.kind == TokKind::kIdent &&
                           (recv.text.find("cv") != std::string::npos ||
                            recv.text.find("cond") != std::string::npos);
      if (cv_like) {
        report(file, t.line, rule,
               "unbounded condition-variable wait on '" + recv.text +
                   "' can park forever; use a bounded wait_for/wait_until "
                   "in a re-checking loop or cancel::Token::wait_ms, or "
                   "annotate // cnt-lint: wait-ok",
               out);
      }
    }
  }
}

void run_rules(const SourceFile& file, const std::vector<std::string>& enabled,
               const TreeContext& ctx, std::vector<Finding>& out) {
  auto on = [&](std::string_view id) {
    return enabled.empty() ||
           std::find(enabled.begin(), enabled.end(), id) != enabled.end();
  };
  if (on("R1")) check_r1_nondeterminism(file, out);
  if (on("R2")) check_r2_global_state(file, out);
  if (on("R3")) check_r3_nodiscard(file, out);
  if (on("R4")) check_r4_narrowing(file, out);
  if (on("R5")) check_r5_unordered_output(file, out);
  if (on("R6")) check_r6_bare_throw(file, out);
  if (on("R7")) check_r7_raw_ofstream(file, out);
  if (on("R8")) check_r8_layering(file, out);
  if (on("R9")) check_r9_lock_discipline(file, ctx, out);
  if (on("R10")) check_r10_hot_alloc(file, out);
  if (on("R11")) check_r11_unchecked_result(file, ctx, out);
  if (on("R12")) check_r12_bare_wait(file, out);
}

void run_rules(const SourceFile& file, const std::vector<std::string>& enabled,
               std::vector<Finding>& out) {
  TreeContext ctx;
  harvest_context(file, ctx);
  run_rules(file, enabled, ctx, out);
}

}  // namespace cnt::lint
