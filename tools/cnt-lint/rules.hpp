// cnt-lint rule engine: domain rules R1-R5 over a lexed SourceFile.
//
// Rule catalog (rationale + examples: docs/static_analysis.md):
//   R1 nondeterminism primitives (rand, srand, random_device, time(,
//      system_clock) outside src/common/rng.*         [nondet-ok]
//   R2 mutable namespace-scope / static state          [global-ok]
//   R3 const accessors returning non-void without [[nodiscard]]
//                                                      [nodiscard-ok]
//   R4 narrowing casts to <=16-bit integer types: C-style/functional
//      casts are banned outright; static_cast needs a range guard
//      within the preceding lines                      [narrow-ok]
//   R5 iteration over unordered containers feeding output (CSV, JSONL,
//      tables, streams)                                [unordered-ok]
//   R6 bare `throw std::runtime_error(...)` inside the taxonomy-migrated
//      subsystems (src/common, src/trace, src/exec)    [throw-ok]
//   R7 raw std::ofstream outside src/common/io.* -- artifact writers
//      must go through DurableFile / AtomicFileWriter   [io-ok]
//
// A finding on line L is silenced by `// cnt-lint: <tag>` on line L or
// line L-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace cnt::lint {

struct Finding {
  std::string path;
  std::uint32_t line = 0;
  std::string rule;     ///< "R1".."R7"
  std::string name;     ///< short rule name, e.g. "nondeterminism"
  std::string message;

  [[nodiscard]] bool operator<(const Finding& o) const noexcept {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct RuleInfo {
  const char* id;
  const char* name;
  const char* suppression;  ///< tag that silences it
  const char* summary;
};

/// Static catalog, ordered R1..R7.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Run the selected rules over one file, appending findings.
/// `enabled` holds rule ids ("R1".."R7"); empty means all rules.
void run_rules(const SourceFile& file, const std::vector<std::string>& enabled,
               std::vector<Finding>& out);

// Individual rules, exposed for targeted tests.
void check_r1_nondeterminism(const SourceFile& file, std::vector<Finding>& out);
void check_r2_global_state(const SourceFile& file, std::vector<Finding>& out);
void check_r3_nodiscard(const SourceFile& file, std::vector<Finding>& out);
void check_r4_narrowing(const SourceFile& file, std::vector<Finding>& out);
void check_r6_bare_throw(const SourceFile& file, std::vector<Finding>& out);
void check_r5_unordered_output(const SourceFile& file,
                               std::vector<Finding>& out);
void check_r7_raw_ofstream(const SourceFile& file, std::vector<Finding>& out);

}  // namespace cnt::lint
