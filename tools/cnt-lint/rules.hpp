// cnt-lint rule engine: domain rules R1-R11 over lexed SourceFiles.
//
// Rule catalog (rationale + examples: docs/static_analysis.md):
//   R1 nondeterminism primitives (rand, srand, random_device, time(,
//      system_clock) outside src/common/rng.*         [nondet-ok]
//   R2 mutable namespace-scope / static state          [global-ok]
//   R3 const accessors returning non-void without [[nodiscard]]
//                                                      [nodiscard-ok]
//   R4 narrowing casts to <=16-bit integer types: C-style/functional
//      casts are banned outright; static_cast needs a range guard
//      within the preceding lines                      [narrow-ok]
//   R5 iteration over unordered containers feeding output (CSV, JSONL,
//      tables, streams)                                [unordered-ok]
//   R6 bare `throw std::runtime_error(...)` inside the taxonomy-migrated
//      subsystems (src/common, src/trace, src/exec)    [throw-ok]
//   R7 raw std::ofstream outside src/common/io.* -- artifact writers
//      must go through DurableFile / AtomicFileWriter   [io-ok]
//   R8 include-layering DAG: a module may only include modules at or
//      below its own layer (common -> device/energy/cnt -> cache ->
//      trace/fault -> sim -> exec -> bench/examples/tools/tests)
//                                                      [layer-ok]
//   R9 lock discipline: members annotated
//      `// cnt-lint: guarded-by(<mutex>)` may only be touched from
//      scopes holding a lock_guard/unique_lock/scoped_lock on that
//      mutex                                           [guard-ok]
//   R10 hot-path allocation ban: functions marked `// cnt-hot` must not
//      allocate (new/make_*/push_back/resize/reserve/std::string
//      construction); throw statements are exempt       [hot-ok]
//   R11 unchecked Result<T>: a statement-position call to a function
//      returning cnt::Result<T> whose value is dropped  [result-ok]
//   R12 bare blocking waits: std::this_thread::sleep_for/sleep_until or
//      an unbounded condition-variable .wait( outside the cancellation
//      layer (src/common/cancel.*, src/common/failpoint.*) -- pauses
//      must be interruptible via cancel::Token::wait_ms or a bounded
//      wait_for/wait_until in a re-checking loop        [wait-ok]
//
// R1-R8, R10 and R12 are per-file. R9 and R11 consult a TreeContext
// harvested from every scanned file first (guard annotations in a
// header govern the paired .cpp; Result-returning declarations are
// collected tree-wide), so the driver runs in two passes.
//
// A finding on line L is silenced by `// cnt-lint: <tag>` on line L or
// line L-1.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "lexer.hpp"

namespace cnt::lint {

struct Finding {
  std::string path;
  std::uint32_t line = 0;
  std::string rule;     ///< "R1".."R11" ("U0" for the suppression audit)
  std::string name;     ///< short rule name, e.g. "nondeterminism"
  std::string message;

  [[nodiscard]] bool operator<(const Finding& o) const noexcept {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct RuleInfo {
  const char* id;
  const char* name;
  const char* suppression;  ///< tag that silences it
  const char* summary;
};

/// Static catalog, ordered R1..R11.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// One `guarded-by` annotation resolved to the declaration it covers.
struct GuardEntry {
  std::string member;           ///< guarded variable / member name
  std::string mutex_name;       ///< mutex that must be held
  std::string path;             ///< declaring file
  std::string stem;             ///< `path` minus extension; a guard in
                                ///< foo.hpp governs foo.cpp and back
  std::uint32_t decl_line = 0;  ///< line of the guarded declaration
  bool local = false;           ///< declared inside a function body
  std::uint32_t scope_first_line = 0;  ///< local guards: enclosing body
  std::uint32_t scope_last_line = 0;   ///< extent (inclusive lines)
};

/// Cross-file facts rules R9/R11 consult; harvested before rules run.
struct TreeContext {
  std::vector<GuardEntry> guards;
  std::unordered_set<std::string> result_functions;
};

/// Collect `file`'s guard annotations and Result<T>-returning function
/// declarations into `ctx`.
void harvest_context(const SourceFile& file, TreeContext& ctx);

/// Run the selected rules over one file, appending findings.
/// `enabled` holds rule ids ("R1".."R11"); empty means all rules.
void run_rules(const SourceFile& file, const std::vector<std::string>& enabled,
               const TreeContext& ctx, std::vector<Finding>& out);

/// Single-file convenience: harvests a TreeContext from `file` alone.
void run_rules(const SourceFile& file, const std::vector<std::string>& enabled,
               std::vector<Finding>& out);

// Individual rules, exposed for targeted tests.
void check_r1_nondeterminism(const SourceFile& file, std::vector<Finding>& out);
void check_r2_global_state(const SourceFile& file, std::vector<Finding>& out);
void check_r3_nodiscard(const SourceFile& file, std::vector<Finding>& out);
void check_r4_narrowing(const SourceFile& file, std::vector<Finding>& out);
void check_r6_bare_throw(const SourceFile& file, std::vector<Finding>& out);
void check_r5_unordered_output(const SourceFile& file,
                               std::vector<Finding>& out);
void check_r7_raw_ofstream(const SourceFile& file, std::vector<Finding>& out);
void check_r8_layering(const SourceFile& file, std::vector<Finding>& out);
void check_r9_lock_discipline(const SourceFile& file, const TreeContext& ctx,
                              std::vector<Finding>& out);
void check_r10_hot_alloc(const SourceFile& file, std::vector<Finding>& out);
void check_r11_unchecked_result(const SourceFile& file, const TreeContext& ctx,
                                std::vector<Finding>& out);
void check_r12_bare_wait(const SourceFile& file, std::vector<Finding>& out);

// R8 layering model, exposed for the include-graph dump in the driver.
// A module is one of the ranked src/ subsystems ("common", "device",
// "energy", "cnt", "cache", "trace", "fault", "sim", "exec") or a
// top-of-stack tree ("bench", "examples", "tools", "tests").
[[nodiscard]] int layer_rank(std::string_view module);  ///< -1 = unknown
[[nodiscard]] std::string layer_module_of_path(std::string_view path);
[[nodiscard]] std::string layer_module_of_include(std::string_view target);

}  // namespace cnt::lint
