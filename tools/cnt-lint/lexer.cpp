#include "lexer.hpp"

#include <cctype>

namespace cnt::lint {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
[[nodiscard]] bool tag_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-';
}

/// Characters that may continue a numeric literal once one has started:
/// digits, hex/bin letters, exponents with sign handled separately,
/// digit separators and length/size suffixes.
[[nodiscard]] bool number_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '\'' || c == '.';
}

void split_raw_lines(std::string_view content, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      out.emplace_back(content.substr(start));
      break;
    }
    out.emplace_back(content.substr(start, nl - start));
    start = nl + 1;
  }
}

/// Strip comment decoration off the front of one comment (segment):
/// slashes, stars, `!` (Doxygen) and whitespace. What remains is the
/// comment body a marker must *open* with.
[[nodiscard]] std::string_view comment_body(std::string_view comment) noexcept {
  std::size_t i = 0;
  while (i < comment.size() &&
         (comment[i] == '/' || comment[i] == '*' || comment[i] == '!' ||
          comment[i] == ' ' || comment[i] == '\t')) {
    ++i;
  }
  return comment.substr(i);
}

/// Parse cnt-lint markers out of one comment body. The marker must open
/// the comment -- prose *mentioning* the syntax mid-sentence never
/// registers anything. Three marker forms:
///   `cnt-lint: <tag> [<tag>...]`       suppression tags; tag words stop
///                                      at the first non-tag-shaped word
///                                      so trailing prose is allowed
///   `cnt-lint: guarded-by(<mutex>)`    R9 guard annotation (recorded
///                                      separately, not as a tag, so the
///                                      unused-suppression audit skips it)
///   `cnt-hot`                          R10 hot-function marker
void collect_markers(std::string_view comment, std::uint32_t line,
                     SourceFile& file) {
  const std::string_view body = comment_body(comment);
  if (body.starts_with("cnt-hot") &&
      (body.size() == 7 || !tag_char(body[7]))) {
    file.hot_lines.push_back(line);
    return;
  }
  if (!body.starts_with("cnt-lint:")) return;
  std::size_t i = 9;
  while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;

  constexpr std::string_view kGuard = "guarded-by(";
  if (body.substr(i).starts_with(kGuard)) {
    const std::size_t name = i + kGuard.size();
    std::size_t j = name;
    while (j < body.size() && ident_char(body[j])) ++j;
    if (j > name && j < body.size() && body[j] == ')') {
      file.guarded_by.push_back(
          GuardAnnotation{std::string(body.substr(name, j - name)), line});
      return;
    }
  }

  auto& tags = file.suppressions[line];
  while (i < body.size()) {
    while (i < body.size() &&
           (body[i] == ' ' || body[i] == ',' || body[i] == '\t')) {
      ++i;
    }
    std::size_t j = i;
    while (j < body.size() && tag_char(body[j])) ++j;
    if (j == i) break;  // not tag-shaped: rest of the comment is prose
    tags.emplace_back(body.substr(i, j - i));
    i = j;
  }
}

}  // namespace

bool SourceFile::suppressed(std::uint32_t line,
                            std::string_view tag) const noexcept {
  return suppression_line(line, tag) != 0;
}

std::uint32_t SourceFile::suppression_line(std::uint32_t line,
                                           std::string_view tag) const noexcept {
  for (const std::uint32_t l : {line, line > 0 ? line - 1 : 0}) {
    const auto it = suppressions.find(l);
    if (it == suppressions.end()) continue;
    for (const auto& t : it->second) {
      if (t == tag) return l;
    }
  }
  return 0;
}

SourceFile lex_file(std::string path, std::string_view content) {
  SourceFile file;
  file.path = std::move(path);
  split_raw_lines(content, file.raw_lines);

  std::uint32_t line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();

  auto push = [&](TokKind kind, std::string_view text) {
    file.tokens.push_back(Token{kind, std::string(text), line});
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Preprocessor directive: record quoted #include targets (rule R8
    // ranks project headers), then consume to end of line honoring `\`
    // splices. Directives carry no tokens (rules target the compiled
    // code) -- but a trailing comment is handed back to the comment
    // scanner so `#include "x"  // cnt-lint: layer-ok` suppresses.
    if (c == '#') {
      std::size_t j = i + 1;
      while (j < n && (content[j] == ' ' || content[j] == '\t')) ++j;
      std::size_t w = j;
      while (w < n && ident_char(content[w])) ++w;
      if (content.substr(j, w - j) == "include") {
        std::size_t q = w;
        while (q < n && (content[q] == ' ' || content[q] == '\t')) ++q;
        if (q < n && content[q] == '"') {
          const std::size_t close = content.find('"', q + 1);
          if (close != std::string_view::npos &&
              content.find('\n', q) > close) {
            file.includes.push_back(IncludeDirective{
                std::string(content.substr(q + 1, close - q - 1)), line});
          }
        }
      }
      while (i < n && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (content[i] == '/' && i + 1 < n &&
            (content[i + 1] == '/' || content[i + 1] == '*')) {
          break;  // let the comment scanner collect markers
        }
        ++i;
      }
      continue;
    }

    // Line comment (suppression tags live here).
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t eol = content.find('\n', i);
      const std::size_t end = (eol == std::string_view::npos) ? n : eol;
      collect_markers(content.substr(i, end - i), line, file);
      i = end;
      continue;
    }

    // Block comment; may span lines, tags attach to the line they sit on.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t j = i + 2;
      std::size_t seg_start = i;
      while (j < n && !(content[j] == '*' && j + 1 < n && content[j + 1] == '/')) {
        if (content[j] == '\n') {
          collect_markers(content.substr(seg_start, j - seg_start), line, file);
          ++line;
          seg_start = j + 1;
        }
        ++j;
      }
      const std::size_t end = (j < n) ? j + 2 : n;
      collect_markers(content.substr(seg_start, end - seg_start), line, file);
      i = end;
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(' && content[j] != '\n' &&
             delim.size() < 16) {
        delim += content[j++];
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t close = content.find(closer, j);
      const std::size_t end =
          (close == std::string_view::npos) ? n : close + closer.size();
      for (std::size_t k = i; k < end; ++k) {
        if (content[k] == '\n') ++line;
      }
      push(TokKind::kString, "");
      i = end;
      continue;
    }

    // String literal.
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && content[j] != '"' && content[j] != '\n') {
        if (content[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      push(TokKind::kString, content.substr(i + 1, j - i - 1));
      i = (j < n && content[j] == '"') ? j + 1 : j;
      continue;
    }

    // Character literal. A `'` directly inside a number (digit
    // separator) never reaches here: numbers consume their separators.
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && content[j] != '\'' && content[j] != '\n') {
        if (content[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      push(TokKind::kCharLit, content.substr(i + 1, j - i - 1));
      i = (j < n && content[j] == '\'') ? j + 1 : j;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(content[j])) ++j;
      push(TokKind::kIdent, content.substr(i, j - i));
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && number_char(content[j])) {
        // Exponent sign: 1.5e-3 / 0x1p+4.
        if ((content[j] == 'e' || content[j] == 'E' || content[j] == 'p' ||
             content[j] == 'P') &&
            j + 1 < n && (content[j + 1] == '+' || content[j + 1] == '-')) {
          j += 2;
          continue;
        }
        ++j;
      }
      push(TokKind::kNumber, content.substr(i, j - i));
      i = j;
      continue;
    }

    // Multi-char punctuation the rules care about.
    const std::string_view rest = content.substr(i);
    bool matched = false;
    for (const std::string_view mc : {"::", "[[", "]]", "->", "<<", ">>"}) {
      if (rest.substr(0, mc.size()) == mc) {
        push(TokKind::kPunct, mc);
        i += mc.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokKind::kPunct, content.substr(i, 1));
      ++i;
    }
  }
  return file;
}

}  // namespace cnt::lint
