#include "lexer.hpp"

#include <cctype>

namespace cnt::lint {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Characters that may continue a numeric literal once one has started:
/// digits, hex/bin letters, exponents with sign handled separately,
/// digit separators and length/size suffixes.
[[nodiscard]] bool number_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '\'' || c == '.';
}

void split_raw_lines(std::string_view content, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      out.emplace_back(content.substr(start));
      break;
    }
    out.emplace_back(content.substr(start, nl - start));
    start = nl + 1;
  }
}

/// Parse suppression tags out of one comment body: every
/// `[A-Za-z0-9-]+` word after the `cnt-lint:` marker, stopping at the
/// first word that is not tag-shaped (so trailing prose is allowed:
/// `// cnt-lint: narrow-ok checked two lines up`).
void collect_tags(std::string_view comment, std::uint32_t line,
                  SourceFile& file) {
  const std::size_t marker = comment.find("cnt-lint:");
  if (marker == std::string_view::npos) return;
  std::size_t i = marker + 9;
  auto& tags = file.suppressions[line];
  while (i < comment.size()) {
    while (i < comment.size() &&
           (comment[i] == ' ' || comment[i] == ',' || comment[i] == '\t')) {
      ++i;
    }
    std::size_t j = i;
    while (j < comment.size() &&
           (std::isalnum(static_cast<unsigned char>(comment[j])) ||
            comment[j] == '-')) {
      ++j;
    }
    if (j == i) break;  // not tag-shaped: rest of the comment is prose
    tags.emplace_back(comment.substr(i, j - i));
    i = j;
  }
}

}  // namespace

bool SourceFile::suppressed(std::uint32_t line,
                            std::string_view tag) const noexcept {
  for (const std::uint32_t l : {line, line > 0 ? line - 1 : 0}) {
    const auto it = suppressions.find(l);
    if (it == suppressions.end()) continue;
    for (const auto& t : it->second) {
      if (t == tag) return true;
    }
  }
  return false;
}

SourceFile lex_file(std::string path, std::string_view content) {
  SourceFile file;
  file.path = std::move(path);
  split_raw_lines(content, file.raw_lines);

  std::uint32_t line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();

  auto push = [&](TokKind kind, std::string_view text) {
    file.tokens.push_back(Token{kind, std::string(text), line});
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Preprocessor directive: consume to end of line, honoring `\` splices.
    // Directives carry no tokens (rules target the compiled code).
    if (c == '#') {
      while (i < n && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }

    // Line comment (suppression tags live here).
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t eol = content.find('\n', i);
      const std::size_t end = (eol == std::string_view::npos) ? n : eol;
      collect_tags(content.substr(i, end - i), line, file);
      i = end;
      continue;
    }

    // Block comment; may span lines, tags attach to the line they sit on.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t j = i + 2;
      std::size_t seg_start = i;
      while (j < n && !(content[j] == '*' && j + 1 < n && content[j + 1] == '/')) {
        if (content[j] == '\n') {
          collect_tags(content.substr(seg_start, j - seg_start), line, file);
          ++line;
          seg_start = j + 1;
        }
        ++j;
      }
      const std::size_t end = (j < n) ? j + 2 : n;
      collect_tags(content.substr(seg_start, end - seg_start), line, file);
      i = end;
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(' && content[j] != '\n' &&
             delim.size() < 16) {
        delim += content[j++];
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t close = content.find(closer, j);
      const std::size_t end =
          (close == std::string_view::npos) ? n : close + closer.size();
      for (std::size_t k = i; k < end; ++k) {
        if (content[k] == '\n') ++line;
      }
      push(TokKind::kString, "");
      i = end;
      continue;
    }

    // String literal.
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && content[j] != '"' && content[j] != '\n') {
        if (content[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      push(TokKind::kString, content.substr(i + 1, j - i - 1));
      i = (j < n && content[j] == '"') ? j + 1 : j;
      continue;
    }

    // Character literal. A `'` directly inside a number (digit
    // separator) never reaches here: numbers consume their separators.
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && content[j] != '\'' && content[j] != '\n') {
        if (content[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      push(TokKind::kCharLit, content.substr(i + 1, j - i - 1));
      i = (j < n && content[j] == '\'') ? j + 1 : j;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(content[j])) ++j;
      push(TokKind::kIdent, content.substr(i, j - i));
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && number_char(content[j])) {
        // Exponent sign: 1.5e-3 / 0x1p+4.
        if ((content[j] == 'e' || content[j] == 'E' || content[j] == 'p' ||
             content[j] == 'P') &&
            j + 1 < n && (content[j + 1] == '+' || content[j + 1] == '-')) {
          j += 2;
          continue;
        }
        ++j;
      }
      push(TokKind::kNumber, content.substr(i, j - i));
      i = j;
      continue;
    }

    // Multi-char punctuation the rules care about.
    const std::string_view rest = content.substr(i);
    bool matched = false;
    for (const std::string_view mc : {"::", "[[", "]]", "->", "<<", ">>"}) {
      if (rest.substr(0, mc.size()) == mc) {
        push(TokKind::kPunct, mc);
        i += mc.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokKind::kPunct, content.substr(i, 1));
      ++i;
    }
  }
  return file;
}

}  // namespace cnt::lint
