// Minimal C++ lexer for cnt-lint.
//
// Produces a comment- and string-stripped token stream plus the raw
// source lines and the per-line suppression tags parsed from
// `// cnt-lint: <tag>` comments. Deliberately NOT a full C++ grammar:
// the rule engine (rules.hpp) works on token patterns, which is enough
// for the determinism/invariant checks R1-R5 and keeps the tool free of
// a libclang dependency so it builds everywhere the project does.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cnt::lint {

enum class TokKind : std::uint8_t {
  kIdent,    ///< identifier or keyword
  kNumber,   ///< numeric literal (incl. digit separators and suffixes)
  kString,   ///< string literal (text holds the quoted content)
  kCharLit,  ///< character literal
  kPunct,    ///< punctuation; multi-char: :: [[ ]] -> << >>
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::uint32_t line = 0;  ///< 1-based source line

  [[nodiscard]] bool is_ident(std::string_view s) const noexcept {
    return kind == TokKind::kIdent && text == s;
  }
  [[nodiscard]] bool is_punct(std::string_view s) const noexcept {
    return kind == TokKind::kPunct && text == s;
  }
};

/// One lexed translation unit.
struct SourceFile {
  std::string path;
  std::vector<std::string> raw_lines;  ///< raw_lines[0] is line 1
  std::vector<Token> tokens;
  /// line -> suppression tags seen in a `cnt-lint:` comment on that line.
  std::unordered_map<std::uint32_t, std::vector<std::string>> suppressions;

  /// True if `tag` is suppressed at `line`: a `// cnt-lint: <tag>`
  /// comment sits on the same line or on the line directly above.
  [[nodiscard]] bool suppressed(std::uint32_t line,
                                std::string_view tag) const noexcept;
};

/// Lex `content` (the bytes of the file at `path`). Never throws on
/// malformed input: unterminated literals simply run to end of line/file.
[[nodiscard]] SourceFile lex_file(std::string path, std::string_view content);

}  // namespace cnt::lint
