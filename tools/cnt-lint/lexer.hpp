// Minimal C++ lexer for cnt-lint.
//
// Produces a comment- and string-stripped token stream plus the raw
// source lines, the per-line suppression tags parsed from
// `// cnt-lint: <tag>` comments, the quoted `#include` targets (rule R8
// walks the include graph), `// cnt-lint: guarded-by(<mutex>)`
// annotations (rule R9) and `// cnt-hot` function markers (rule R10).
// Deliberately NOT a full C++ grammar: the rule engine (rules.hpp)
// works on token patterns plus a brace-scope model, which is enough for
// the determinism/invariant checks R1-R11 and keeps the tool free of a
// libclang dependency so it builds everywhere the project does.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cnt::lint {

enum class TokKind : std::uint8_t {
  kIdent,    ///< identifier or keyword
  kNumber,   ///< numeric literal (incl. digit separators and suffixes)
  kString,   ///< string literal (text holds the quoted content)
  kCharLit,  ///< character literal
  kPunct,    ///< punctuation; multi-char: :: [[ ]] -> << >>
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::uint32_t line = 0;  ///< 1-based source line

  [[nodiscard]] bool is_ident(std::string_view s) const noexcept {
    return kind == TokKind::kIdent && text == s;
  }
  [[nodiscard]] bool is_punct(std::string_view s) const noexcept {
    return kind == TokKind::kPunct && text == s;
  }
};

/// One quoted `#include "target"` directive (angle-bracket system
/// includes are not recorded: R8 ranks project headers only).
struct IncludeDirective {
  std::string target;      ///< the quoted path, verbatim
  std::uint32_t line = 0;  ///< 1-based source line
};

/// One `// cnt-lint: guarded-by(<mutex>)` annotation. The guarded
/// variable is resolved from the declaration it annotates (same line or
/// the line below) by the rule engine, not the lexer.
struct GuardAnnotation {
  std::string mutex_name;
  std::uint32_t line = 0;  ///< line the marker comment sits on
};

/// One lexed translation unit.
struct SourceFile {
  std::string path;
  std::vector<std::string> raw_lines;  ///< raw_lines[0] is line 1
  std::vector<Token> tokens;
  /// line -> suppression tags seen in a `cnt-lint:` comment on that
  /// line. The marker must open the comment (only whitespace or comment
  /// decoration before it), so prose *mentioning* the syntax never
  /// registers a suppression.
  std::unordered_map<std::uint32_t, std::vector<std::string>> suppressions;
  std::vector<IncludeDirective> includes;
  std::vector<GuardAnnotation> guarded_by;
  std::vector<std::uint32_t> hot_lines;  ///< lines bearing `// cnt-hot`

  /// True if `tag` is suppressed at `line`: a `// cnt-lint: <tag>`
  /// comment sits on the same line or on the line directly above.
  [[nodiscard]] bool suppressed(std::uint32_t line,
                                std::string_view tag) const noexcept;

  /// Line of the marker comment that suppresses `tag` at `line` (the
  /// line itself or the one above), or 0 when not suppressed. The
  /// unused-suppression audit needs to know *which* marker fired.
  [[nodiscard]] std::uint32_t suppression_line(
      std::uint32_t line, std::string_view tag) const noexcept;
};

/// Lex `content` (the bytes of the file at `path`). Never throws on
/// malformed input: unterminated literals simply run to end of line/file.
[[nodiscard]] SourceFile lex_file(std::string path, std::string_view content);

}  // namespace cnt::lint
