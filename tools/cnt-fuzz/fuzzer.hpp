// Deterministic, dependency-free structure-aware fuzzer for the ingest
// layer (the "fuzz wall", docs/error_handling.md).
//
// Design:
//  - every random decision flows through cnt::Rng, so a (seed, runs,
//    corpus) triple reproduces the exact same mutated inputs and the
//    exact same outcome digest on every platform and every rerun;
//  - mutations start from a checked-in corpus of valid (`seed_*`) and
//    known-bad (`bad_*`) inputs per format, so most mutants stay close
//    enough to the grammar to reach deep parser states;
//  - each parser runs in-process; the wall's invariant is that EVERY
//    input either parses or raises a *structured* cnt::Error -- any other
//    exception (or an abort / sanitizer report) is a finding.
//
// The wall runs in the default and asan builds as ctest label `fuzz`
// (tests/test_fuzz_wall.cpp) and standalone via the cnt-fuzz CLI. The
// optional libFuzzer entry points live behind the CNT_LIBFUZZER CMake
// option (fuzz_entry.cpp) for open-ended coverage-guided runs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace cnt::fuzz {

/// The six ingest parsers under the wall.
enum class FuzzTarget : u8 {
  kIni,          ///< Config::parse (INI)
  kTraceText,    ///< read_text (text trace)
  kTraceBinary,  ///< read_binary (binary trace)
  kJournal,      ///< exec::read_journal (sealed JSONL journal)
  kJsonl,        ///< parse_json per line (telemetry rows)
  kTraceStream,  ///< stream::StreamTraceSource (chunked columnar trace)
};

inline constexpr FuzzTarget kAllTargets[] = {
    FuzzTarget::kIni,     FuzzTarget::kTraceText, FuzzTarget::kTraceBinary,
    FuzzTarget::kJournal, FuzzTarget::kJsonl,     FuzzTarget::kTraceStream};

/// Stable name ("ini", "trace_text", ...); doubles as the corpus
/// subdirectory name under tests/fuzz/corpus/.
[[nodiscard]] std::string_view target_name(FuzzTarget t) noexcept;

/// Inverse of target_name; returns false on an unknown name.
[[nodiscard]] bool parse_target(std::string_view name, FuzzTarget& out);

/// Tight limits for fuzzing: small enough that limit paths are reachable
/// within mutated corpus sizes, and that no single run allocates much.
inline constexpr ParseLimits kFuzzLimits{
    /*max_line_bytes=*/4096,
    /*max_records=*/4096,
    /*max_reserve_bytes=*/usize{1} << 20,
    /*max_depth=*/16,
};

/// One corpus entry. `expect_bad` mirrors the file-name convention:
/// `seed_*` inputs must be accepted by their parser, `bad_*` inputs must
/// be rejected with a structured error. Binary payloads are stored as
/// `.hex` files (whitespace-separated hex bytes) and decoded on load.
struct CorpusEntry {
  std::string name;
  std::string data;
  bool expect_bad = false;
};

/// Load every regular file in `dir`, sorted by file name so iteration
/// order (and therefore the fuzz stream) is platform-independent. Throws
/// cnt::Error (kIo) if the directory is missing or empty.
[[nodiscard]] std::vector<CorpusEntry> load_corpus(const std::string& dir);

/// How one input fared against its parser.
struct FuzzOutcome {
  enum class Cls : u8 {
    kAccepted,  ///< parsed cleanly
    kRejected,  ///< raised a structured cnt::Error / cnt::ValueError
    kCrashed,   ///< raised anything else -- a wall violation
  };
  Cls cls = Cls::kAccepted;
  /// errc_name() for kRejected; journal state ("clean"/"torn"/
  /// "mid-file"/"no-header") for kJournal; what() for kCrashed.
  std::string label;
};

/// Run one input through one parser, in-process, classifying the result.
/// Never lets an exception escape.
[[nodiscard]] FuzzOutcome classify(FuzzTarget t, const std::string& input);

/// Apply 1..4 seeded mutations to a corpus pick (bit/byte flips, chunk
/// truncate/duplicate/delete, insertions, digit swaps, line swaps, and
/// cross-entry splices). Exposed for tests.
[[nodiscard]] std::string mutate(Rng& rng, const std::string& base,
                                 const std::vector<CorpusEntry>& corpus);

/// Aggregate result of a fuzzing campaign against one target.
struct FuzzReport {
  u64 runs = 0;
  u64 accepted = 0;
  u64 rejected = 0;
  u64 crashed = 0;  ///< wall violations (must be 0)
  u64 digest = 0;   ///< FNV over every (input hash, outcome) pair
  std::string first_crash_input;  ///< hex dump of the first violating input
  std::string first_crash_what;   ///< its exception message
};

/// Fuzz `target` for `runs` mutated inputs derived from `corpus` under
/// `seed`. Deterministic: equal arguments produce an equal report
/// (including `digest`) on every rerun.
[[nodiscard]] FuzzReport fuzz_target(FuzzTarget target,
                                     const std::vector<CorpusEntry>& corpus,
                                     u64 seed, u64 runs);

/// Hex-dump helper for reporting crash inputs ("de ad be ef ...").
[[nodiscard]] std::string hex_dump(std::string_view bytes);

}  // namespace cnt::fuzz
