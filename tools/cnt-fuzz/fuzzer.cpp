#include "cnt-fuzz/fuzzer.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/config.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "exec/journal.hpp"
#include "trace/stream/stream_reader.hpp"
#include "trace/trace_io.hpp"

namespace cnt::fuzz {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] int hex_nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Decode a `.hex` corpus file: whitespace-separated hex byte pairs
/// ('#' starts a comment until end of line).
std::string decode_hex_file(const std::string& text, const std::string& name) {
  std::string out;
  int hi = -1;
  bool comment = false;
  for (const char c : text) {
    if (c == '\n') {
      comment = false;
      continue;
    }
    if (comment) continue;
    if (c == '#') {
      comment = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    const int nib = hex_nibble(c);
    if (nib < 0) {
      throw Error(Errc::kSyntax,
                  "bad hex digit '" + std::string(1, c) + "' in corpus file")
          .at(name)
          .hint(".hex corpus files hold whitespace-separated hex byte "
                "pairs with optional '#' comments");
    }
    if (hi < 0) {
      hi = nib;
    } else {
      out += static_cast<char>((hi << 4) | nib);
      hi = -1;
    }
  }
  if (hi >= 0) {
    throw Error(Errc::kTruncated, "odd number of hex digits in corpus file")
        .at(name)
        .hint("every byte needs two hex digits");
  }
  return out;
}

}  // namespace

std::string_view target_name(FuzzTarget t) noexcept {
  switch (t) {
    case FuzzTarget::kIni: return "ini";
    case FuzzTarget::kTraceText: return "trace_text";
    case FuzzTarget::kTraceBinary: return "trace";
    case FuzzTarget::kJournal: return "journal";
    case FuzzTarget::kJsonl: return "jsonl";
    case FuzzTarget::kTraceStream: return "trace_stream";
  }
  return "?";
}

bool parse_target(std::string_view name, FuzzTarget& out) {
  for (const FuzzTarget t : kAllTargets) {
    if (target_name(t) == name) {
      out = t;
      return true;
    }
  }
  return false;
}

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> corpus;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (!de.is_regular_file()) continue;
    CorpusEntry entry;
    entry.name = de.path().filename().string();
    entry.expect_bad = entry.name.rfind("bad_", 0) == 0;
    std::ifstream in(de.path(), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    entry.data = entry.name.size() >= 4 &&
                         entry.name.compare(entry.name.size() - 4, 4,
                                            ".hex") == 0
                     ? decode_hex_file(body.str(), entry.name)
                     : body.str();
    corpus.push_back(std::move(entry));
  }
  if (ec) {
    throw Error(Errc::kIo, "cannot read corpus directory")
        .at(dir)
        .hint("pass --corpus pointing at tests/fuzz/corpus/<target>");
  }
  if (corpus.empty()) {
    throw Error(Errc::kIo, "corpus directory is empty")
        .at(dir)
        .hint("each target needs seed_* (valid) and bad_* (known-bad) "
              "corpus files");
  }
  // directory_iterator order is filesystem-dependent; the fuzz stream
  // must not be, so anchor it by name.
  std::sort(corpus.begin(), corpus.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return corpus;
}

FuzzOutcome classify(FuzzTarget t, const std::string& input) {
  FuzzOutcome out;
  try {
    switch (t) {
      case FuzzTarget::kIni: {
        std::istringstream is(input);
        (void)Config::parse(is, "fuzz", kFuzzLimits);
        break;
      }
      case FuzzTarget::kTraceText: {
        std::istringstream is(input);
        (void)read_text(is, "fuzz", kFuzzLimits);
        break;
      }
      case FuzzTarget::kTraceBinary: {
        std::istringstream is(input);
        (void)read_binary(is, "fuzz", kFuzzLimits);
        break;
      }
      case FuzzTarget::kJournal: {
        // read_journal never throws; its outcome is a state label.
        std::istringstream is(input);
        exec::JournalData data;
        if (!exec::read_journal(is, "fuzz", data, kFuzzLimits)) {
          out.cls = FuzzOutcome::Cls::kRejected;
          out.label = "no-header";
        } else if (data.mid_file_corruption) {
          out.cls = FuzzOutcome::Cls::kRejected;
          out.label = "mid-file";
        } else if (data.dropped_lines > 0) {
          // A torn tail is the normal crash signature: the loader
          // accepts the file and recovers the valid prefix.
          out.label = "torn";
        } else {
          out.label = "clean";
        }
        break;
      }
      case FuzzTarget::kJsonl: {
        std::istringstream is(input);
        std::string line;
        for (;;) {
          const LineStatus status =
              bounded_getline(is, line, kFuzzLimits.max_line_bytes);
          if (status == LineStatus::kEof) break;
          if (status == LineStatus::kTooLong) {
            throw Error(Errc::kLimit, "JSONL line over the fuzz cap")
                .at("fuzz")
                .hint("telemetry rows are far shorter than this");
          }
          if (line.empty()) continue;
          (void)parse_json(line, "fuzz", kFuzzLimits);
        }
        break;
      }
      case FuzzTarget::kTraceStream: {
        std::istringstream is(input);
        stream::StreamTraceSource src(is, "fuzz", kFuzzLimits);
        MemAccess buf[64];
        while (src.next(buf) != 0) {
        }
        break;
      }
    }
  } catch (const ErrorBase& e) {
    out.cls = FuzzOutcome::Cls::kRejected;
    out.label = std::string(errc_name(e.info().code));
  } catch (const std::exception& e) {
    out.cls = FuzzOutcome::Cls::kCrashed;
    out.label = e.what();
  } catch (...) {
    out.cls = FuzzOutcome::Cls::kCrashed;
    out.label = "non-std exception";
  }
  return out;
}

std::string mutate(Rng& rng, const std::string& base,
                   const std::vector<CorpusEntry>& corpus) {
  std::string s = base;
  const u64 rounds = 1 + rng.uniform(4);
  for (u64 round = 0; round < rounds; ++round) {
    if (s.empty()) {
      s += static_cast<char>(rng.next_byte());
      continue;
    }
    const usize pos = rng.uniform(s.size());
    switch (rng.uniform(9)) {
      case 0:  // flip one bit
        // cnt-lint: narrow-ok byte-level mutation
        s[pos] = static_cast<char>(static_cast<u8>(s[pos]) ^
                                   (u8{1} << rng.uniform(8)));
        break;
      case 1:  // overwrite one byte
        s[pos] = static_cast<char>(rng.next_byte());  // cnt-lint: narrow-ok
        break;
      case 2:  // truncate
        s.resize(pos);
        break;
      case 3: {  // insert a random byte
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos),
                 // cnt-lint: narrow-ok byte insert
                 static_cast<char>(rng.next_byte()));
        break;
      }
      case 4: {  // duplicate a chunk in place
        const usize len = std::min<usize>(1 + rng.uniform(16), s.size() - pos);
        s.insert(pos, s.substr(pos, len));
        break;
      }
      case 5: {  // delete a chunk
        const usize len = std::min<usize>(1 + rng.uniform(16), s.size() - pos);
        s.erase(pos, len);
        break;
      }
      case 6: {  // digit nudge: reach range/limit paths through numbers
        const usize digit = s.find_first_of("0123456789", pos);
        if (digit != std::string::npos) {
          s[digit] = static_cast<char>('0' + rng.uniform(10));
        }
        break;
      }
      case 7: {  // splice: our prefix + another corpus entry's suffix
        const CorpusEntry& other = corpus[rng.uniform(corpus.size())];
        if (!other.data.empty()) {
          s = s.substr(0, pos) +
              other.data.substr(other.data.size() -
                                1 - rng.uniform(other.data.size()));
        }
        break;
      }
      default: {  // swap two whole lines (structure-level reorder)
        const usize a = s.find('\n');
        if (a != std::string::npos && a + 1 < s.size()) {
          const usize b = s.find('\n', a + 1);
          const std::string first = s.substr(0, a);
          const std::string second =
              b == std::string::npos ? s.substr(a + 1)
                                     : s.substr(a + 1, b - a - 1);
          const std::string rest =
              b == std::string::npos ? "" : s.substr(b);
          s = second + "\n" + first + rest;
        }
        break;
      }
    }
  }
  return s;
}

FuzzReport fuzz_target(FuzzTarget target,
                       const std::vector<CorpusEntry>& corpus, u64 seed,
                       u64 runs) {
  FuzzReport report;
  report.runs = runs;
  Rng rng(seed ^ fnv1a64(target_name(target)));
  Fnv1a64 digest;
  digest.update(std::string_view("cnt-fuzz-v1"));
  digest.update(std::string_view(target_name(target)));
  digest.update(seed);
  for (u64 i = 0; i < runs; ++i) {
    const CorpusEntry& base = corpus[rng.uniform(corpus.size())];
    const std::string input = mutate(rng, base.data, corpus);
    const FuzzOutcome outcome = classify(target, input);
    digest.update(fnv1a64(input));
    digest.update(static_cast<u64>(outcome.cls));
    digest.update(outcome.label);
    switch (outcome.cls) {
      case FuzzOutcome::Cls::kAccepted: ++report.accepted; break;
      case FuzzOutcome::Cls::kRejected: ++report.rejected; break;
      case FuzzOutcome::Cls::kCrashed:
        if (report.crashed == 0) {
          report.first_crash_input = hex_dump(input);
          report.first_crash_what = outcome.label;
        }
        ++report.crashed;
        break;
    }
  }
  report.digest = digest.digest();
  return report;
}

std::string hex_dump(std::string_view bytes) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (usize i = 0; i < bytes.size(); ++i) {
    const u8 b = static_cast<u8>(bytes[i]);  // cnt-lint: narrow-ok byte view
    if (i > 0) out += ' ';
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

}  // namespace cnt::fuzz
