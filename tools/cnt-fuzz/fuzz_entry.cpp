// Optional libFuzzer entry point (built only under -DCNT_LIBFUZZER=ON
// with Clang). One binary covers all five targets: the first input byte
// selects the parser (modulo the target count), the rest is the payload.
// This keeps a single growing coverage corpus able to explore every
// format while the deterministic wall (cnt-fuzz / ctest label `fuzz`)
// stays the repeatable CI gate.
//
// Run:  cnt_fuzz_libfuzzer -max_len=4096 tests/fuzz/corpus/ini ...
#include <cstddef>
#include <cstdint>
#include <string>

#include "cnt-fuzz/fuzzer.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  constexpr std::size_t kTargets =
      sizeof(cnt::fuzz::kAllTargets) / sizeof(cnt::fuzz::kAllTargets[0]);
  const cnt::fuzz::FuzzTarget target =
      cnt::fuzz::kAllTargets[data[0] % kTargets];
  const std::string input(reinterpret_cast<const char*>(data + 1), size - 1);
  // classify() swallows structured rejections; anything it reports as a
  // crash escaped the taxonomy, which is exactly what libFuzzer should
  // flag -- so re-run the parser raw and let the exception propagate.
  if (cnt::fuzz::classify(target, input).cls ==
      cnt::fuzz::FuzzOutcome::Cls::kCrashed) {
    __builtin_trap();
  }
  return 0;
}
