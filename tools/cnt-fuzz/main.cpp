// cnt-fuzz: deterministic in-process fuzzing of the ingest parsers.
//
// Usage:
//   cnt-fuzz --corpus-root DIR [--target NAME|all] [--seed N] [--runs N]
//            [--check-corpus]
//
// --corpus-root points at tests/fuzz/corpus (each target fuzzes its own
// subdirectory). --check-corpus additionally asserts the corpus contract:
// every seed_* entry is accepted and every bad_* entry is rejected with a
// structured error. Exit status is 0 iff no wall violations (and, with
// --check-corpus, no contract violations) were found.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "cnt-fuzz/fuzzer.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"

namespace {

using namespace cnt;
using namespace cnt::fuzz;

struct Options {
  std::string corpus_root;
  std::string target = "all";
  u64 seed = 1;
  u64 runs = 10000;
  bool check_corpus = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --corpus-root DIR [--target NAME|all] [--seed N]"
               " [--runs N] [--check-corpus]\n"
               "targets:";
  for (const FuzzTarget t : kAllTargets) std::cerr << ' ' << target_name(t);
  std::cerr << '\n';
  return 2;
}

/// Returns the number of contract violations (seed_* rejected or bad_*
/// not structurally rejected).
u64 check_corpus(FuzzTarget t, const std::vector<CorpusEntry>& corpus) {
  u64 violations = 0;
  for (const CorpusEntry& entry : corpus) {
    const FuzzOutcome outcome = classify(t, entry.data);
    const bool ok = entry.expect_bad
                        ? outcome.cls == FuzzOutcome::Cls::kRejected
                        : outcome.cls == FuzzOutcome::Cls::kAccepted;
    if (ok) continue;
    ++violations;
    std::cerr << "corpus violation: " << target_name(t) << '/' << entry.name
              << " expected " << (entry.expect_bad ? "rejected" : "accepted")
              << ", got "
              << (outcome.cls == FuzzOutcome::Cls::kAccepted ? "accepted"
                  : outcome.cls == FuzzOutcome::Cls::kRejected
                      ? "rejected(" + outcome.label + ")"
                      : "CRASH(" + outcome.label + ")")
              << '\n';
  }
  return violations;
}

int run(const Options& opts) {
  std::vector<FuzzTarget> targets;
  if (opts.target == "all") {
    targets.assign(std::begin(kAllTargets), std::end(kAllTargets));
  } else {
    FuzzTarget t{};
    if (!parse_target(opts.target, t)) {
      std::cerr << "unknown target '" << opts.target << "'\n";
      return 2;
    }
    targets.push_back(t);
  }

  u64 total_crashes = 0;
  u64 total_violations = 0;
  for (const FuzzTarget t : targets) {
    const std::string dir =
        opts.corpus_root + "/" + std::string(target_name(t));
    const std::vector<CorpusEntry> corpus = load_corpus(dir);
    if (opts.check_corpus) total_violations += check_corpus(t, corpus);
    const FuzzReport report = fuzz_target(t, corpus, opts.seed, opts.runs);
    std::cout << target_name(t) << ": runs=" << report.runs
              << " accepted=" << report.accepted
              << " rejected=" << report.rejected
              << " crashed=" << report.crashed
              << " digest=" << hex_u64(report.digest) << '\n';
    if (report.crashed > 0) {
      std::cerr << "WALL VIOLATION (" << target_name(t)
                << "): " << report.first_crash_what
                << "\n  input: " << report.first_crash_input << '\n';
    }
    total_crashes += report.crashed;
  }
  return total_crashes == 0 && total_violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--corpus-root" && has_value) {
      opts.corpus_root = argv[++i];
    } else if (arg == "--target" && has_value) {
      opts.target = argv[++i];
    } else if (arg == "--seed" && has_value) {
      opts.seed = std::stoull(argv[++i]);
    } else if (arg == "--runs" && has_value) {
      opts.runs = std::stoull(argv[++i]);
    } else if (arg == "--check-corpus") {
      opts.check_corpus = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.corpus_root.empty()) return usage(argv[0]);
  try {
    return run(opts);
  } catch (const std::exception& e) {
    std::cerr << "cnt-fuzz: " << cnt::format_error(e) << '\n';
    return 2;
  }
}
