// cnt-chaos: seeded chaos wall for the hung-work defenses
// (docs/robustness.md).
//
// Where cnt-crash tortures the durable writers one kill point at a time,
// cnt-chaos composes *schedules* of misbehaviour -- delays, transient
// errors, torn journal writes, hangs, signal storms -- over a real sweep
// (with a fault campaign armed, so the protected-array path is the one
// under chaos) and asserts the engine-level contract per seed:
//
//   no deadlock      every child finishes inside a hard wall-clock bound
//                    (a SIGKILL backstop turns a hang into a FAIL);
//   journal sane     the sweep journal is always loadable-or-refused --
//                    a --resume run either restores it byte-identically
//                    to the unchaosed reference or fails loudly;
//   quarantine exact a hang under the watchdog exits kExitQuarantine
//                    with exactly one sealed Q-row, and the resume run
//                    clears it.
//
// The failpoint trigger indices are chosen per (case, seed) from the hit
// counts of an instrumented reference run, so --seeds N sweeps N
// deterministic schedules per case.
//
//   cnt-chaos [--out DIR] [--seeds N] [--case NAME] [--keep] [--list]
//
// Exit 0 when every case holds, 1 on any violation, 2 on usage errors.
// Unix-only (fork/waitpid).
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "exec/engine.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;
namespace fsys = std::filesystem;

namespace {

int usage() {
  std::cerr << "usage: cnt-chaos [--out DIR] [--seeds N] [--case NAME]"
               " [--keep] [--list]\n"
               "  --out DIR    working directory (default: cnt_chaos_out)\n"
               "  --seeds N    schedules probed per case (default 1)\n"
               "  --case NAME  restrict to one chaos case\n"
               "  --keep       keep per-case directories for inspection\n"
               "  --list       print the chaos case catalog and exit\n";
  return 2;
}

u64 fnv1a(std::string_view s) {
  u64 h = 0xcbf29ce484222325ULL;
  for (const char ch : s) {
    h ^= static_cast<u64>(ch) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Seeded 1-based trigger index into `count` evaluations of a site.
u64 pick_index(std::string_view label, u64 seed, u64 count) {
  u64 h = fnv1a(label);
  h ^= seed * 0x9e3779b97f4a7c15ULL;
  return 1 + h % count;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Occurrences of the "quarantined" key in the journal -- the sink only
/// emits it on sealed Q-rows, so this is the quarantine report.
u64 count_quarantined(const std::string& journal_bytes) {
  static constexpr std::string_view kKey = "\"quarantined\"";
  u64 n = 0;
  for (usize at = journal_bytes.find(kKey); at != std::string::npos;
       at = journal_bytes.find(kKey, at + kKey.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Child-side payload: a real three-job sweep with a deterministic fault
// campaign, journaled with timing off so bytes compare across runs.

std::vector<exec::Job> chaos_jobs() {
  std::vector<exec::Job> jobs;
  for (const char* w : {"zipf_kv", "ifetch", "hash_join"}) {
    exec::Job j;
    j.workload = w;
    j.scale = 0.05;
    j.config.with_cmos = j.config.with_static = j.config.with_ideal = false;
    // Chaos runs exercise the protected-array path, not the clean model:
    // a seeded stuck-cell campaign under SECDED rides every job.
    j.config.fault.protection = ProtectionScheme::kSecded;
    j.config.fault.stuck_per_mbit = 4.0;
    jobs.push_back(j);
  }
  return jobs;
}

struct SweepParams {
  bool resume = false;
  u64 job_timeout_ms = 0;  ///< 0: watchdog disarmed
  u32 max_retries = 0;
  bool signal_storm = false;  ///< raise SIGINTs from a helper thread
};

int run_sweep(const std::string& dir, const SweepParams& p) {
  if (p.signal_storm) {
    // Escalating storm: with handle_signals the first SIGINT interrupts
    // gracefully and the second restores default disposition, so the
    // third (if the sweep is still alive) kills the process outright.
    std::thread([] {
      const cancel::Token pace;
      for (int i = 0; i < 3; ++i) {
        (void)pace.wait_ms(25);
        (void)std::raise(SIGINT);
      }
    }).detach();
  }
  exec::EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = dir + "/sweep.jsonl";
  opts.jsonl_timing = false;  // byte-identity across runs is the contract
  opts.resume = p.resume;
  opts.max_retries = p.max_retries;
  opts.retry_backoff_ms = 1;
  opts.job_timeout_ms = p.job_timeout_ms;
  opts.handle_signals = true;
  const exec::ExperimentEngine engine(opts);
  try {
    const std::vector<exec::JobOutcome> outcomes = engine.run(chaos_jobs());
    return exec::sweep_exit_code(outcomes);
  } catch (const exec::SweepInterrupted&) {
    return 130;
  }
}

// ---------------------------------------------------------------------------
// Parent-side process control with a hard wall-clock bound.

struct ChildStatus {
  bool killed_backstop = false;  ///< deadline blown; SIGKILLed by us
  int term_signal = 0;           ///< terminating signal when nonzero
  int exit_code = -1;            ///< wait status exit code otherwise
};

#if defined(__unix__)

/// Fork and run `payload` with CNT_FAILPOINTS=`spec` (empty = disarmed)
/// and CNT_FAILPOINT_REPORT=`report` (empty = no probing). The parent
/// polls with a deadline: a child still alive at `deadline_ms` is
/// SIGKILLed and reported as a deadlock -- the no-deadlock assertion.
ChildStatus run_child(const std::function<int()>& payload,
                      const std::string& spec, const std::string& report,
                      const std::string& err_path, u64 deadline_ms) {
  std::cout.flush();
  std::cerr.flush();
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "cnt-chaos: fork failed\n";
    std::exit(2);
  }
  if (pid == 0) {
    // Isolate the child from ambient engine knobs; only the explicit
    // per-case parameters decide behaviour.
    ::unsetenv("CNT_RETRIES");
    ::unsetenv("CNT_JOB_TIMEOUT_MS");
    ::unsetenv("CNT_JOBS");
    if (spec.empty()) {
      ::unsetenv("CNT_FAILPOINTS");
    } else {
      ::setenv("CNT_FAILPOINTS", spec.c_str(), 1);
    }
    if (report.empty()) {
      ::unsetenv("CNT_FAILPOINT_REPORT");
    } else {
      ::setenv("CNT_FAILPOINT_REPORT", report.c_str(), 1);
    }
    int code = 0;
    try {
      fp::configure_from_env();
      code = payload();
    } catch (const std::exception& e) {
      // Expected for injected I/O errors; record for --keep debugging.
      if (std::FILE* f = std::fopen(err_path.c_str(), "w")) {
        std::fprintf(f, "%s\n", format_error(e).c_str());
        (void)std::fclose(f);
      }
      code = 1;
    } catch (...) {
      code = 1;
    }
    fp::write_report();
    std::_Exit(code);  // no atexit/dtors: don't flush the parent's buffers
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  const cancel::Token pace;
  ChildStatus out;
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (WIFSIGNALED(status)) {
        out.term_signal = WTERMSIG(status);
      } else if (WIFEXITED(status)) {
        out.exit_code = WEXITSTATUS(status);
      }
      return out;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      (void)::kill(pid, SIGKILL);
      (void)::waitpid(pid, &status, 0);
      out.killed_backstop = true;
      return out;
    }
    (void)pace.wait_ms(5);
  }
}

#endif  // defined(__unix__)

std::map<std::string, u64> read_report(const std::string& path) {
  std::map<std::string, u64> counts;
  std::ifstream in(path);
  std::string site;
  u64 n = 0;
  while (in >> site >> n) counts[site] = n;
  return counts;
}

/// One seeded chaos schedule over the sweep. `spec` may reference the
/// {job} / {journal} placeholders, replaced by seeded trigger indices.
struct ChaosCase {
  std::string name;
  std::string spec;       ///< failpoint schedule template
  SweepParams params;     ///< chaos-run engine knobs
  bool clean_exit;        ///< chaos run itself must exit 0, journal == ref
  bool quarantine_one;    ///< chaos run exits 3 with exactly one Q-row
  bool needs_resume;      ///< follow with a clean --resume run
};

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  // A delayed job changes nothing but wall clock.
  cases.push_back({"delay", "engine.job=delay:5@{job}", {},
                   /*clean_exit=*/true, false, false});
  // A transient job error is retried to a byte-identical completion.
  cases.push_back({"transient", "engine.job=error:EIO@{job}",
                   {.max_retries = 2},
                   /*clean_exit=*/true, false, false});
  // Composed schedule: a delay and a transient error in one run.
  cases.push_back({"compose",
                   "engine.job=delay:5@{job};engine.job=error:EIO@{job2}",
                   {.max_retries = 2},
                   /*clean_exit=*/true, false, false});
  // A torn journal write fails the sweep loudly; --resume restores it.
  cases.push_back({"short-write", "journal.write=short-write@{journal}", {},
                   /*clean_exit=*/false, false, /*needs_resume=*/true});
  // A hung job is cancelled by the watchdog and quarantined; the sweep
  // completes without it and --resume re-attempts only that job.
  cases.push_back({"hang", "engine.job=hang@{job}",
                   {.job_timeout_ms = 250},
                   /*clean_exit=*/false, /*quarantine_one=*/true,
                   /*needs_resume=*/true});
  // An escalating SIGINT storm: graceful interrupt, then default
  // disposition, possibly death mid-write; --resume restores.
  cases.push_back({"sigstorm", "",
                   {.signal_storm = true},
                   /*clean_exit=*/false, false, /*needs_resume=*/true});
  return cases;
}

struct Options {
  std::string out = "cnt_chaos_out";
  u64 seeds = 1;
  std::string only;  ///< empty: all cases
  bool keep = false;
};

}  // namespace

int main(int argc, char** argv) {
#if !defined(__unix__)
  std::cerr << "cnt-chaos: requires fork/waitpid (unix only)\n";
  return 2;
#else
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--list") {
      for (const auto& c : chaos_cases()) std::cout << c.name << "\n";
      return 0;
    }
    if (arg == "--keep") {
      opt.keep = true;
    } else if (arg == "--out" && val != nullptr) {
      opt.out = val;
      ++i;
    } else if (arg == "--seeds" && val != nullptr) {
      opt.seeds = std::strtoull(val, nullptr, 10);
      ++i;
    } else if (arg == "--case" && val != nullptr) {
      opt.only = val;
      ++i;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage();
    }
  }
  if (opt.seeds == 0) opt.seeds = 1;

  std::error_code ec;
  fsys::create_directories(opt.out, ec);
  if (ec) {
    std::cerr << "cnt-chaos: cannot create " << opt.out << ": "
              << ec.message() << "\n";
    return 2;
  }

  // Hard per-child wall-clock bound -- the no-deadlock assertion. Far
  // above any healthy run (the sweep takes well under a second) so a
  // trip always means parked-forever work.
  constexpr u64 kDeadlineMs = 60'000;

  u64 cases_run = 0;
  u64 failures = 0;
  auto fail = [&](const std::string& label, const std::string& why) {
    ++failures;
    std::cout << "FAIL " << label << ": " << why << "\n";
  };

  // Reference run: clean journal bytes + per-site hit counts that seed
  // the trigger indices.
  const std::string ref_dir = opt.out + "/ref";
  fsys::remove_all(ref_dir, ec);
  fsys::create_directories(ref_dir);
  const std::string report_path = ref_dir + "/failpoint_report.txt";
  const ChildStatus ref =
      run_child([&] { return run_sweep(ref_dir, {}); }, "", report_path,
                ref_dir + "/err.txt", kDeadlineMs);
  if (ref.killed_backstop || ref.term_signal != 0 || ref.exit_code != 0) {
    std::cerr << "cnt-chaos: reference sweep did not exit 0\n";
    return 2;
  }
  const std::map<std::string, u64> counts = read_report(report_path);
  const std::string ref_bytes = slurp(ref_dir + "/sweep.jsonl");
  const u64 job_hits = counts.count("engine.job") ? counts.at("engine.job") : 0;
  const u64 journal_hits =
      counts.count("journal.write") ? counts.at("journal.write") : 0;
  if (ref_bytes.empty() || job_hits == 0 || journal_hits == 0) {
    std::cerr << "cnt-chaos: reference run left no journal or hit counts\n";
    return 2;
  }

  for (const ChaosCase& cc : chaos_cases()) {
    if (!opt.only.empty() && cc.name != opt.only) continue;
    for (u64 seed = 0; seed < opt.seeds; ++seed) {
      ++cases_run;
      // Substitute seeded trigger indices into the schedule template.
      std::string spec = cc.spec;
      auto subst = [&](const std::string& key, u64 index) {
        const usize at = spec.find(key);
        if (at != std::string::npos) {
          spec.replace(at, key.size(), std::to_string(index));
        }
      };
      const u64 kj = pick_index(cc.name + "|job", seed, job_hits);
      // A distinct second index so composed entries never collide.
      const u64 kj2 = 1 + kj % job_hits;
      subst("{job}", kj);
      subst("{job2}", kj2);
      subst("{journal}", pick_index(cc.name + "|journal", seed,
                                    journal_hits));

      const std::string label =
          cc.name + "/seed" + std::to_string(seed) +
          (spec.empty() ? "" : " [" + spec + "]");
      const std::string dir = opt.out + "/case_" + cc.name + "_s" +
                              std::to_string(seed);
      fsys::remove_all(dir, ec);
      fsys::create_directories(dir);

      SweepParams params = cc.params;
      const ChildStatus st =
          run_child([&] { return run_sweep(dir, params); }, spec, "",
                    dir + "/err.txt", kDeadlineMs);
      bool ok = true;
      if (st.killed_backstop) {
        fail(label, "deadlock: child blew the wall-clock bound");
        ok = false;
      } else if (cc.clean_exit) {
        if (st.term_signal != 0 || st.exit_code != 0) {
          fail(label, "chaos schedule was not absorbed cleanly");
          ok = false;
        }
      } else if (cc.quarantine_one) {
        if (st.term_signal != 0 || st.exit_code != exec::kExitQuarantine) {
          fail(label, "hang did not exit kExitQuarantine");
          ok = false;
        } else {
          const u64 q = count_quarantined(slurp(dir + "/sweep.jsonl"));
          if (q != 1) {
            fail(label, "expected exactly 1 quarantined row, found " +
                            std::to_string(q));
            ok = false;
          }
        }
      } else if (cc.params.signal_storm) {
        // Graceful interrupt (130), death by the escalated storm, or a
        // photo-finish clean exit are all legal; a deadlock is not.
        if (st.term_signal != 0 && st.term_signal != SIGINT) {
          fail(label, "storm killed the child with an unexpected signal");
          ok = false;
        } else if (st.term_signal == 0 && st.exit_code != 0 &&
                   st.exit_code != 130) {
          fail(label, "storm produced an unexpected exit code");
          ok = false;
        }
      } else if (st.term_signal != 0 || st.exit_code == 0) {
        fail(label, "injected journal fault did not fail gracefully");
        ok = false;
      }

      // Recovery: a clean --resume run must complete and restore the
      // journal byte-identically -- loadable-or-refused, never readable
      // but wrong.
      if (ok && cc.needs_resume) {
        const ChildStatus rec = run_child(
            [&] {
              return run_sweep(dir, {.resume = true});
            },
            "", "", dir + "/err_resume.txt", kDeadlineMs);
        if (rec.killed_backstop || rec.term_signal != 0 ||
            rec.exit_code != 0) {
          fail(label, "--resume recovery run failed");
          ok = false;
        }
      }

      if (ok) {
        const std::string got = slurp(dir + "/sweep.jsonl");
        const bool must_match = cc.clean_exit || cc.needs_resume;
        if (must_match && got != ref_bytes) {
          fail(label, "journal differs from the unchaosed reference");
          ok = false;
        } else if (must_match && count_quarantined(got) != 0) {
          fail(label, "quarantined row survived recovery");
          ok = false;
        }
      }

      if (ok) std::cout << "ok   " << label << "\n";
      if (!opt.keep) fsys::remove_all(dir, ec);
    }
  }
  if (!opt.keep) fsys::remove_all(ref_dir, ec);

  std::cout << "cnt-chaos: " << (cases_run - failures) << "/" << cases_run
            << " cases hold\n";
  return failures == 0 ? 0 : 1;
#endif  // defined(__unix__)
}
