// cnt_tracegen: generate workload traces as chunked streamed files
// (CNTTRS, docs/trace_streaming.md) without materializing them.
//
//   $ cnt_tracegen <workload> <out.trs> [options]
//   $ cnt_tracegen --list
//
// Server-traffic scenarios (srv_*, server_traffic) stream straight from
// the generator to disk, so multi-GB traces need only chunk-sized memory;
// suite workloads are built in RAM first (they are small by design) and
// then written out. Replaying a bare trace file exercises the cache and
// energy models with unwritten memory reading as zero.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "trace/gen/server_traffic.hpp"
#include "trace/stream/stream_writer.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

namespace {

int usage() {
  std::cerr
      << "usage:\n"
      << "  cnt_tracegen <workload> <out.trs> [--scale S] [--ops N]\n"
      << "               [--records N] [--seed-offset K] "
         "[--chunk-capacity N]\n"
      << "  cnt_tracegen --list\n"
      << "\n"
      << "--ops/--records apply to server-traffic scenarios only;\n"
      << "--scale shrinks or grows any workload.\n";
  return 1;
}

void list_workloads() {
  std::cout << "suite workloads:";
  for (const auto& n : suite_names()) std::cout << ' ' << n;
  std::cout << " ifetch btree_lookup rle_compress\n";
  std::cout << "server-traffic scenarios:\n";
  std::cout << "  server_traffic  (defaults)\n";
  for (const auto& s : gen::traffic_scenarios()) {
    std::cout << "  " << s.name << "  (" << s.description << ")\n";
  }
}

const gen::TrafficScenario* find_scenario(const std::string& name) {
  for (const auto& s : gen::traffic_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--list") {
    list_workloads();
    return 0;
  }
  if (argc < 3) return usage();
  const std::string name = argv[1];
  const std::string out_path = argv[2];

  double scale = 1.0;
  u64 seed_offset = 0;
  u64 ops_override = 0;
  u64 records_override = 0;
  u64 chunk_capacity = stream::kDefaultChunkCapacity;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--scale" && val != nullptr) {
      scale = std::atof(val);
      ++i;
    } else if (arg == "--ops" && val != nullptr) {
      ops_override = std::strtoull(val, nullptr, 10);
      ++i;
    } else if (arg == "--records" && val != nullptr) {
      records_override = std::strtoull(val, nullptr, 10);
      ++i;
    } else if (arg == "--seed-offset" && val != nullptr) {
      seed_offset = std::strtoull(val, nullptr, 10);
      ++i;
    } else if (arg == "--chunk-capacity" && val != nullptr) {
      chunk_capacity = std::strtoull(val, nullptr, 10);
      ++i;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage();
    }
  }
  if (chunk_capacity == 0 || chunk_capacity > stream::kMaxChunkCapacity) {
    std::cerr << "chunk capacity must be in [1, "
              << stream::kMaxChunkCapacity << "]\n";
    return 1;
  }

  try {
    const gen::TrafficScenario* scenario = find_scenario(name);
    if (scenario != nullptr || name == "server_traffic") {
      // Stream straight to disk: the trace never exists in memory.
      gen::ServerTrafficParams p =
          scenario != nullptr ? scenario->params : gen::ServerTrafficParams{};
      if (scale != 1.0) {
        p.ops = static_cast<usize>(static_cast<double>(p.ops) * scale);
      }
      if (ops_override != 0) p.ops = ops_override;
      if (records_override != 0) p.records = records_override;
      if (seed_offset != 0) p.seed += seed_offset * 0x9e3779b97f4a7c15ULL;
      stream::StreamTraceWriter writer(out_path,
                                       static_cast<u32>(chunk_capacity));
      const u64 accesses = gen::generate_server_traffic(p, writer);
      writer.finish();
      std::cout << "wrote " << accesses << " accesses in "
                << writer.chunks() << " chunks to " << out_path << "\n";
    } else {
      const Workload w = build_workload(name, scale, seed_offset);
      stream::StreamTraceWriter writer(out_path,
                                       static_cast<u32>(chunk_capacity));
      for (const auto& a : w.trace) writer.push(a);
      writer.finish();
      std::cout << "wrote " << writer.records() << " accesses in "
                << writer.chunks() << " chunks to " << out_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << format_error(e) << "\n";
    return 1;
  }
  return 0;
}
