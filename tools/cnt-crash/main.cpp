// cnt-crash: kill-point torture harness for the crash-consistency wall
// (docs/crash_consistency.md).
//
// For every failpoint site in the catalog (common/failpoint.hpp) the
// harness forks a child that runs a small deterministic workload with
// that site armed, then verifies the recovery contract from the parent:
//
//   crash          the child is SIGKILLed at the site (a power cut);
//                  afterwards either the artifact is absent, byte-equal
//                  to a clean reference run, refused by its reader, or
//                  -- for the sweep journal -- restored byte-identically
//                  by a --resume run;
//   error:ENOSPC   the child fails gracefully (nonzero exit, no kill)
//                  and the same artifact invariant holds;
//   short-write    (write sites only) a torn prefix lands on disk and
//                  the same invariant holds.
//
// The kill index is chosen per (site, action, seed) from the hit counts
// of an instrumented reference run ($CNT_FAILPOINT_REPORT), so --seeds N
// sweeps N different kill points per site deterministically.
//
//   cnt-crash [--out DIR] [--seeds N] [--site NAME] [--keep] [--list]
//
// --list prints the site catalog. Exit 0 when every case holds, 1 on any
// violation, 2 on usage errors. Unix-only (fork/waitpid).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "exec/engine.hpp"
#include "sim/runner.hpp"
#include "sim/stats_dump.hpp"
#include "trace/stream/stream_reader.hpp"
#include "trace/stream/stream_writer.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;
namespace fsys = std::filesystem;

namespace {

int usage() {
  std::cerr << "usage: cnt-crash [--out DIR] [--seeds N] [--site NAME]"
               " [--keep] [--list]\n"
               "  --out DIR    working directory (default: cnt_crash_out)\n"
               "  --seeds N    kill points probed per site+action (default 1)\n"
               "  --site NAME  restrict to one failpoint site\n"
               "  --keep       keep per-case directories for inspection\n"
               "  --list       print the failpoint site catalog and exit\n";
  return 2;
}

u64 fnv1a(std::string_view s) {
  u64 h = 0xcbf29ce484222325ULL;
  for (const char ch : s) {
    h ^= static_cast<u64>(ch) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Child-side payloads. Each writes its artifact(s) under `dir`; the
// armed failpoint decides where (and whether) it dies.

std::vector<exec::Job> sweep_jobs() {
  std::vector<exec::Job> jobs;
  for (const char* w : {"zipf_kv", "ifetch", "hash_join"}) {
    exec::Job j;
    j.workload = w;
    j.scale = 0.05;
    jobs.push_back(j);
  }
  return jobs;
}

void run_sweep(const std::string& dir, bool resume) {
  exec::EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = dir + "/sweep.jsonl";
  opts.jsonl_timing = false;  // byte-identity across runs is the contract
  opts.resume = resume;
  opts.max_retries = 2;  // injected engine.job failures must retry clean
  opts.retry_backoff_ms = 1;
  const exec::ExperimentEngine engine(opts);
  (void)engine.run(sweep_jobs());
}

void run_trs(const std::string& dir) {
  stream::StreamTraceWriter writer(dir + "/torture.trs", 64);
  for (u64 i = 0; i < 500; ++i) {
    MemAccess a;
    a.addr = (i % 512) * 64;
    a.size = 8;
    a.op = (i % 7 == 0) ? MemOp::kWrite : MemOp::kRead;
    a.value = i * 0x9e3779b97f4a7c15ULL;
    writer.push(a);
  }
  writer.finish();
}

void run_csv(const std::string& dir) {
  CsvWriter csv(dir + "/torture.csv", {"row", "payload"});
  for (u64 i = 0; i < 64; ++i) {
    csv.add_row({std::to_string(i), std::to_string(i * 31)});
  }
  csv.finish();
}

void run_stats(const std::string& dir) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const Workload w = build_workload("ifetch", 0.05, 0);
  dump_json_file({simulate(w, cfg)}, dir + "/torture_stats.json");
}

void run_trace(const std::string& dir) {
  Trace t("torture");
  for (u64 i = 0; i < 300; ++i) {
    MemAccess a;
    a.addr = (i % 128) * 64;
    a.size = 8;
    a.op = (i % 3 == 0) ? MemOp::kWrite : MemOp::kRead;
    a.value = i ^ 0x5a5a5a5aULL;
    t.push(a);
  }
  save_trace(t, dir + "/torture.trc");
}

void run_bench_emit(const std::string& dir) {
  // The same AtomicFileWriter path the perf benches publish through,
  // minus the (slow) measurement itself.
  io::AtomicFileWriter out(dir + "/BENCH_torture.json", "bench");
  out.stream() << "{\"schema\":\"cnt-crash-torture\",\"rows\":[";
  for (u64 i = 0; i < 32; ++i) {
    out.stream() << (i == 0 ? "" : ",") << i * 7;
  }
  out.stream() << "]}\n";
  out.commit();
}

// ---------------------------------------------------------------------------
// Parent-side process control and verification.

struct ChildStatus {
  bool killed = false;  ///< terminated by SIGKILL (crash action landed)
  int exit_code = -1;   ///< wait status exit code when !killed
};

#if defined(__unix__)

/// Fork and run `payload` with CNT_FAILPOINTS=`spec` (empty = disarmed)
/// and CNT_FAILPOINT_REPORT=`report` (empty = no probing). The child
/// never returns; exceptions map to exit 1, and the one expected kill
/// signal is SIGKILL from the crash action.
ChildStatus run_child(const std::function<void()>& payload,
                      const std::string& spec, const std::string& report,
                      const std::string& err_path) {
  std::cout.flush();
  std::cerr.flush();
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "cnt-crash: fork failed\n";
    std::exit(2);
  }
  if (pid == 0) {
    if (spec.empty()) {
      ::unsetenv("CNT_FAILPOINTS");
    } else {
      ::setenv("CNT_FAILPOINTS", spec.c_str(), 1);
    }
    if (report.empty()) {
      ::unsetenv("CNT_FAILPOINT_REPORT");
    } else {
      ::setenv("CNT_FAILPOINT_REPORT", report.c_str(), 1);
    }
    int code = 0;
    try {
      fp::configure_from_env();
      payload();
    } catch (const std::exception& e) {
      // Expected for injected error actions; record for --keep debugging.
      if (std::FILE* f = std::fopen(err_path.c_str(), "w")) {
        std::fprintf(f, "%s\n", format_error(e).c_str());
        (void)std::fclose(f);
      }
      code = 1;
    } catch (...) {
      code = 1;
    }
    fp::write_report();
    std::_Exit(code);  // no atexit/dtors: don't flush the parent's buffers
  }
  int status = 0;
  (void)::waitpid(pid, &status, 0);
  ChildStatus out;
  if (WIFSIGNALED(status)) {
    out.killed = WTERMSIG(status) == SIGKILL;
    out.exit_code = -1;
  } else if (WIFEXITED(status)) {
    out.exit_code = WEXITSTATUS(status);
  }
  return out;
}

#endif  // defined(__unix__)

std::map<std::string, u64> read_report(const std::string& path) {
  std::map<std::string, u64> counts;
  std::ifstream in(path);
  std::string site;
  u64 n = 0;
  while (in >> site >> n) counts[site] = n;
  return counts;
}

/// True when the chunked-trace reader refuses `path` (torn tail, bad
/// CRC, truncated footer) -- the contract for crash-landed .trs files.
bool trs_refused(const std::string& path) {
  try {
    stream::StreamTraceSource src(path);
    std::vector<MemAccess> buf(256);
    while (src.next(std::span<MemAccess>(buf)) > 0) {
    }
    return false;
  } catch (const std::exception&) {
    return true;
  }
}

struct Scenario {
  std::string name;
  std::vector<std::string> sites;
  std::function<void(const std::string&)> payload;
  std::function<void(const std::string&)> recover;  ///< empty: no resume
  std::string artifact;       ///< final artifact, relative to the case dir
  bool torn_refusable = false;  ///< reader-refusal satisfies the invariant
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> s;
  s.push_back(Scenario{
      "sweep",
      {"engine.job", "journal.write", "journal.sync", "journal.rename"},
      [](const std::string& dir) { run_sweep(dir, /*resume=*/false); },
      [](const std::string& dir) { run_sweep(dir, /*resume=*/true); },
      "sweep.jsonl",
      false});
  s.push_back(Scenario{"tracegen",
                       {"trs.write", "trs.sync"},
                       run_trs,
                       nullptr,
                       "torture.trs",
                       /*torn_refusable=*/true});
  s.push_back(Scenario{"csv",
                       {"csv.write", "csv.sync", "csv.rename"},
                       run_csv,
                       nullptr,
                       "torture.csv",
                       false});
  s.push_back(Scenario{"stats",
                       {"stats.write", "stats.sync", "stats.rename"},
                       run_stats,
                       nullptr,
                       "torture_stats.json",
                       false});
  s.push_back(Scenario{"trace",
                       {"trace.write", "trace.sync", "trace.rename"},
                       run_trace,
                       nullptr,
                       "torture.trc",
                       false});
  s.push_back(Scenario{"bench",
                       {"bench.write", "bench.sync", "bench.rename"},
                       run_bench_emit,
                       nullptr,
                       "BENCH_torture.json",
                       false});
  return s;
}

struct Options {
  std::string out = "cnt_crash_out";
  u64 seeds = 1;
  std::string site;  ///< empty: all sites
  bool keep = false;
};

}  // namespace

int main(int argc, char** argv) {
#if !defined(__unix__)
  std::cerr << "cnt-crash: requires fork/waitpid (unix only)\n";
  return 2;
#else
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--list") {
      for (const auto& site : fp::site_catalog()) std::cout << site << "\n";
      return 0;
    }
    if (arg == "--keep") {
      opt.keep = true;
    } else if (arg == "--out" && val != nullptr) {
      opt.out = val;
      ++i;
    } else if (arg == "--seeds" && val != nullptr) {
      opt.seeds = std::strtoull(val, nullptr, 10);
      ++i;
    } else if (arg == "--site" && val != nullptr) {
      opt.site = val;
      ++i;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage();
    }
  }
  if (opt.seeds == 0) opt.seeds = 1;
  if (!opt.site.empty()) {
    const auto& catalog = fp::site_catalog();
    if (std::find(catalog.begin(), catalog.end(), opt.site) ==
        catalog.end()) {
      std::cerr << "cnt-crash: unknown site '" << opt.site
                << "' (see --list)\n";
      return 2;
    }
  }

  std::error_code ec;
  fsys::create_directories(opt.out, ec);
  if (ec) {
    std::cerr << "cnt-crash: cannot create " << opt.out << ": "
              << ec.message() << "\n";
    return 2;
  }

  u64 cases = 0;
  u64 failures = 0;
  auto fail = [&](const std::string& label, const std::string& why) {
    ++failures;
    std::cout << "FAIL " << label << ": " << why << "\n";
  };

  for (const Scenario& sc : scenarios()) {
    // Skip scenarios with no site selected.
    bool any = opt.site.empty();
    for (const auto& site : sc.sites) any = any || site == opt.site;
    if (!any) continue;

    // Reference run: clean artifact bytes + per-site hit counts.
    const std::string ref_dir = opt.out + "/ref_" + sc.name;
    fsys::remove_all(ref_dir, ec);
    fsys::create_directories(ref_dir);
    const std::string report_path = ref_dir + "/failpoint_report.txt";
    const ChildStatus ref = run_child([&] { sc.payload(ref_dir); }, "",
                                      report_path, ref_dir + "/err.txt");
    if (ref.killed || ref.exit_code != 0) {
      fail(sc.name + "/reference", "clean run did not exit 0");
      continue;
    }
    const std::map<std::string, u64> counts = read_report(report_path);
    const std::string ref_bytes = slurp(ref_dir + "/" + sc.artifact);
    if (ref_bytes.empty()) {
      fail(sc.name + "/reference", "clean run left no artifact");
      continue;
    }

    for (const std::string& site : sc.sites) {
      if (!opt.site.empty() && site != opt.site) continue;
      const auto it = counts.find(site);
      if (it == counts.end() || it->second == 0) {
        fail(sc.name + "/" + site, "site never evaluated by the scenario");
        continue;
      }
      const u64 count = it->second;

      std::vector<std::string> actions = {"crash", "error:ENOSPC"};
      if (site.size() > 6 &&
          site.compare(site.size() - 6, 6, ".write") == 0) {
        actions.push_back("short-write");
      }
      for (u64 seed = 0; seed < opt.seeds; ++seed) {
        for (const std::string& action : actions) {
          ++cases;
          u64 h = fnv1a(site + "|" + action);
          h ^= seed * 0x9e3779b97f4a7c15ULL;
          const u64 k = 1 + h % count;
          const std::string spec =
              site + "=" + action + "@" + std::to_string(k);
          const std::string label = sc.name + "/" + spec;
          const std::string dir =
              opt.out + "/case_" + std::to_string(cases);
          fsys::remove_all(dir, ec);
          fsys::create_directories(dir);

          const ChildStatus st =
              run_child([&] { sc.payload(dir); }, spec, "",
                        dir + "/err.txt");
          bool ok = true;
          if (action == "crash") {
            if (!st.killed) {
              fail(label, "armed crash did not SIGKILL the child");
              ok = false;
            }
          } else if (site == "engine.job") {
            // An injected transient job failure is retried to a clean,
            // byte-identical completion -- not an exit at all.
            if (st.killed || st.exit_code != 0) {
              fail(label, "transient job failure was not retried clean");
              ok = false;
            }
          } else if (st.killed || st.exit_code == 0) {
            fail(label, "injected I/O error did not fail gracefully");
            ok = false;
          }

          // Recovery: a --resume run must restore the journal
          // byte-identically from whatever the fault left behind.
          if (ok && sc.recover && !(site == "engine.job" &&
                                    action != "crash")) {
            const ChildStatus rec = run_child([&] { sc.recover(dir); }, "",
                                              "", dir + "/err_resume.txt");
            if (rec.killed || rec.exit_code != 0) {
              fail(label, "--resume recovery run failed");
              ok = false;
            }
          }

          // Artifact invariant: absent, byte-equal to the reference, or
          // (chunked traces) refused by the reader. Never readable but
          // wrong.
          if (ok) {
            const std::string final_path = dir + "/" + sc.artifact;
            if (fsys::exists(final_path)) {
              const std::string got = slurp(final_path);
              if (got != ref_bytes &&
                  !(sc.torn_refusable && trs_refused(final_path))) {
                fail(label, "artifact is readable but differs from the "
                            "reference");
                ok = false;
              }
            } else if (sc.recover) {
              fail(label, "journal missing after recovery");
              ok = false;
            }
          }

          if (ok) std::cout << "ok   " << label << "\n";
          if (!opt.keep) fsys::remove_all(dir, ec);
        }
      }
    }
    if (!opt.keep) fsys::remove_all(ref_dir, ec);
  }

  std::cout << "cnt-crash: " << (cases - failures) << "/" << cases
            << " cases hold\n";
  return failures == 0 ? 0 : 1;
#endif  // defined(__unix__)
}
