#!/usr/bin/env python3
"""Regression gate over a cnt_sim/stats_dump JSON file.

Usage:
    build/examples/cnt_sim my.ini           # with [output] json = run.json
    python3 scripts/check_regression.py run.json [--min-saving 0.10]
    python3 scripts/check_regression.py results/BENCH_stream_replay.json \
        [--min-aps 100000]

Checks the invariants a healthy run must satisfy (finite positive
energies, savings within sane bounds, baseline policy present) and,
optionally, a minimum CNT-Cache saving.

Also accepts perf-bench documents (schemas cnt-bench-perf-v1 and -v2,
emitted by bench_perf_stream_replay and bench_perf_kernels): finite
positive throughput, a positive peak-RSS reading, and a byte-identical
in-RAM-vs-streamed energy ledger, with an optional --min-aps accesses/sec
floor. v2 nests the run-varying wall-clock/throughput/RSS fields under a
"timing" object so the stable identity fields diff cleanly across runs
(docs/performance.md); kernel-suite documents carry a "kernels" array of
{name, ops, timing} entries and --min-aps gates their "replay" kernel.

Exit codes: 0 = pass, 1 = invariant violated, 2 = prerequisite missing
(file absent/unreadable, malformed JSON, missing schema tag).
"""

import argparse
import json
import math
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def check_result(r, min_saving):
    name = r.get("workload", "?")
    policies = {p["name"]: p for p in r.get("policies", [])}
    if "cnfet_base" not in policies:
        return fail(f"{name}: baseline policy missing")
    if "cnt_cache" not in policies:
        return fail(f"{name}: cnt_cache policy missing")

    for pname, p in policies.items():
        total = p.get("total_j")
        if total is None or not math.isfinite(total) or total <= 0:
            return fail(f"{name}/{pname}: bad total energy {total}")
        cat_sum = sum(c["joules"] for c in p.get("categories", {}).values())
        if abs(cat_sum - total) > 1e-9 * max(total, 1e-30):
            return fail(
                f"{name}/{pname}: categories sum {cat_sum} != total {total}")

    saving = r.get("savings", {}).get("cnt_cache")
    if saving is None or not -1.0 < saving < 1.0:
        return fail(f"{name}: implausible saving {saving}")
    if min_saving is not None and saving < min_saving:
        return fail(f"{name}: saving {saving:.3f} below gate {min_saving}")

    cache = r.get("cache", {})
    if not 0.0 <= cache.get("hit_rate", -1) <= 1.0:
        return fail(f"{name}: bad hit rate")
    print(f"ok: {name}  saving={saving:.3f}  "
          f"hit_rate={cache.get('hit_rate'):.3f}")
    return 0


def positive_number(v):
    return isinstance(v, (int, float)) and math.isfinite(v) and v > 0


def check_perf(doc, min_aps):
    """Structural checks for a cnt-bench-perf-v1 document (flat fields)."""
    name = doc.get("bench", "?")
    if doc.get("failpoints_enabled"):
        return fail(f"{name}: measured with failpoints armed "
                    "(failpoints_enabled=true); rerun without CNT_FAILPOINTS")
    if doc.get("job_timeout_armed"):
        return fail(f"{name}: measured with the job watchdog armed "
                    "(job_timeout_armed=true); rerun without "
                    "CNT_JOB_TIMEOUT_MS")
    for key in ("accesses", "file_bytes", "seconds", "accesses_per_sec",
                "peak_rss_bytes"):
        if not positive_number(doc.get(key)):
            return fail(f"{name}: bad {key} {doc.get(key)!r}")
    if doc.get("ledger_identical") is not True:
        return fail(f"{name}: streamed replay diverged from the in-RAM "
                    "energy ledger")
    aps = doc["accesses_per_sec"]
    if min_aps is not None and aps < min_aps:
        return fail(f"{name}: {aps:.0f} accesses/sec below gate {min_aps:.0f}")
    print(f"ok: {name}  {aps:.0f} accesses/sec  "
          f"peak_rss={doc['peak_rss_bytes'] / 2**20:.1f} MiB  "
          f"ledger_identical=true")
    return 0


def check_perf_v2(doc, min_aps):
    """Checks for a cnt-bench-perf-v2 document: stable identity fields at
    the top level, run-varying measurements nested under "timing"."""
    name = doc.get("bench", "?")
    if doc.get("failpoints_enabled"):
        return fail(f"{name}: measured with failpoints armed "
                    "(failpoints_enabled=true); rerun without CNT_FAILPOINTS")
    if doc.get("job_timeout_armed"):
        return fail(f"{name}: measured with the job watchdog armed "
                    "(job_timeout_armed=true); rerun without "
                    "CNT_JOB_TIMEOUT_MS")

    if "kernels" in doc:
        kernels = doc["kernels"]
        if not isinstance(kernels, list) or not kernels:
            return fail(f"{name}: empty or malformed kernels array")
        rc = 0
        for k in kernels:
            kname = k.get("name", "?")
            timing = k.get("timing", {})
            if not positive_number(k.get("ops")):
                rc |= fail(f"{name}/{kname}: bad ops {k.get('ops')!r}")
                continue
            for key in ("seconds", "ops_per_sec"):
                if not positive_number(timing.get(key)):
                    rc |= fail(f"{name}/{kname}: bad timing.{key} "
                               f"{timing.get(key)!r}")
                    break
            else:
                rate = timing["ops_per_sec"]
                if (min_aps is not None and kname == "replay"
                        and rate < min_aps):
                    rc |= fail(f"{name}/{kname}: {rate:.0f} ops/sec below "
                               f"gate {min_aps:.0f}")
                else:
                    print(f"ok: {name}/{kname}  {rate:.0f} ops/sec")
        return rc

    timing = doc.get("timing", {})
    for key in ("accesses", "file_bytes"):
        if not positive_number(doc.get(key)):
            return fail(f"{name}: bad {key} {doc.get(key)!r}")
    for key in ("seconds", "accesses_per_sec", "peak_rss_bytes"):
        if not positive_number(timing.get(key)):
            return fail(f"{name}: bad timing.{key} {timing.get(key)!r}")
    if doc.get("ledger_identical") is not True:
        return fail(f"{name}: streamed replay diverged from the in-RAM "
                    "energy ledger")
    aps = timing["accesses_per_sec"]
    if min_aps is not None and aps < min_aps:
        return fail(f"{name}: {aps:.0f} accesses/sec below gate {min_aps:.0f}")
    print(f"ok: {name}  {aps:.0f} accesses/sec  "
          f"peak_rss={timing['peak_rss_bytes'] / 2**20:.1f} MiB  "
          f"ledger_identical=true")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_file")
    ap.add_argument("--min-saving", type=float, default=None,
                    help="fail if any workload's cnt_cache saving is below")
    ap.add_argument("--min-aps", type=float, default=None,
                    help="fail if a perf bench's accesses/sec is below")
    args = ap.parse_args()

    # Prerequisite problems exit 2 loudly instead of tracebacking (or,
    # worse, passing vacuously on an empty/absent input).
    try:
        with open(args.json_file) as fh:
            doc = json.load(fh)
    except OSError as exc:
        fail(f"cannot read {args.json_file}: {exc}")
        return 2
    except json.JSONDecodeError as exc:
        fail(f"malformed JSON in {args.json_file}: {exc}")
        return 2
    if not isinstance(doc, dict):
        fail(f"{args.json_file}: top-level JSON value is not an object")
        return 2

    # stats_dump stamps multi-result files with a schema tag; a
    # single-result dump is recognised by its top-level "workload" key.
    # Anything else is not a results file at all -- refuse it rather
    # than defaulting the schema to the happy path.
    if "workload" in doc:
        results = [doc]
    elif "schema" not in doc:
        fail(f"{args.json_file}: missing schema tag "
             "(expected cnt-cache-results-v1 or cnt-bench-perf-v1)")
        return 2
    elif doc["schema"] == "cnt-bench-perf-v1":
        rc = check_perf(doc, args.min_aps)
        if rc == 0:
            print("PASS: perf bench healthy")
        return rc
    elif doc["schema"] == "cnt-bench-perf-v2":
        rc = check_perf_v2(doc, args.min_aps)
        if rc == 0:
            print("PASS: perf bench healthy")
        return rc
    elif doc["schema"] != "cnt-cache-results-v1":
        return fail(f"unknown schema {doc['schema']}")
    else:
        results = doc.get("results", [])
    if not results:
        return fail("no results found in the JSON document")

    rc = 0
    for r in results:
        rc |= check_result(r, args.min_saving)
    if rc == 0:
        print(f"PASS: {len(results)} result(s) healthy")
    return rc


if __name__ == "__main__":
    sys.exit(main())
