#!/usr/bin/env bash
# One-stop local quality gate: documentation drift, cnt-lint static
# analysis (text findings, then the machine-readable JSON surface, the
# suppression audit and the include-layering DAG), the cnt-fuzz ingest
# wall, the results regression check, the perf wall (ctest -L perf +
# BENCH_*.json gating), and the cnt-crash crash-consistency wall, in
# that order.
#
#   scripts/check_all.sh [build_dir] [results.json]
#
# build_dir defaults to `build` and must contain the compiled tree
# (tools/cnt-lint/cnt-lint, tools/cnt-fuzz/cnt-fuzz, examples/cnt_sim
# and bench/bench_perf_stream_replay). When no results.json is given, a
# smoke run of cnt_sim against a generated minimal config feeds
# check_regression.py instead.
#
# Every missing prerequisite is a loud exit-2 failure -- this script
# never skips a leg silently.
set -u

cd "$(dirname "$0")/.." || exit 1

build_dir=${1:-build}
results_json=${2:-}
fail=0

say() { echo "check_all: $1"; }
die() {
  echo "check_all: $1" >&2
  exit 2
}

[ -d "$build_dir" ] || die "build directory not found: $build_dir (run: cmake --preset default && cmake --build --preset default)"

# --- leg 1: documentation drift -------------------------------------------
say "[1/8] scripts/check_docs.sh"
scripts/check_docs.sh || fail=1

# --- leg 2: cnt-lint over the whole tree ----------------------------------
lint_bin="$build_dir/tools/cnt-lint/cnt-lint"
[ -x "$lint_bin" ] || die "cnt-lint binary not found: $lint_bin (build the default preset first)"
say "[2/8] cnt-lint src bench examples tests tools"
"$lint_bin" src bench examples tests tools --exclude=tests/lint/fixtures || fail=1

# --- leg 3: lint JSON surface, suppression audit, include DAG -------------
# The JSON pass proves the machine-readable surface parses and reports a
# clean tree; the audit fails on any suppression that no longer silences
# a finding; the DAG dump exits non-zero on an include-layer cycle. The
# fixture exclusion matters for the graph too: the R8 fixture's
# deliberate cache->sim back-edge would otherwise close a cycle.
say "[3/8] cnt-lint --format=json / --report-unused-suppressions / --dump-include-graph=dot"
"$lint_bin" --format=json src bench examples tests tools --exclude=tests/lint/fixtures \
  | python3 -c 'import json,sys; r = json.load(sys.stdin); sys.exit(0 if r["schema"] == "cnt-lint-v1" and r["count"] == 0 else 1)' || fail=1
"$lint_bin" --report-unused-suppressions src bench examples tests tools --exclude=tests/lint/fixtures || fail=1
"$lint_bin" --dump-include-graph=dot src bench examples tests tools --exclude=tests/lint/fixtures \
  > "$build_dir/include_graph.dot" || fail=1

# --- leg 4: deterministic fuzz wall over every ingest parser --------------
fuzz_bin="$build_dir/tools/cnt-fuzz/cnt-fuzz"
[ -x "$fuzz_bin" ] || die "cnt-fuzz binary not found: $fuzz_bin (build the default preset first)"
say "[4/8] cnt-fuzz --target all --seed 1 --runs 2000 --check-corpus"
"$fuzz_bin" --corpus-root tests/fuzz/corpus --target all --seed 1 --runs 2000 --check-corpus || fail=1

# --- leg 5: results regression gate ---------------------------------------
say "[5/8] scripts/check_regression.py"
if [ -n "$results_json" ]; then
  [ -e "$results_json" ] || die "results file not found: $results_json"
  python3 scripts/check_regression.py "$results_json" || fail=1
else
  sim_bin="$build_dir/examples/cnt_sim"
  [ -x "$sim_bin" ] || die "cnt_sim binary not found: $sim_bin (build the default preset first)"
  tmpdir=$(mktemp -d) || die "mktemp failed"
  trap 'rm -rf "$tmpdir"' EXIT
  cat >"$tmpdir/smoke.ini" <<EOF
[workload]
name = zipf_kv
scale = 0.1
[output]
json = $tmpdir/smoke.json
EOF
  say "smoke run: cnt_sim (zipf_kv, scale 0.1)"
  "$sim_bin" "$tmpdir/smoke.ini" >/dev/null || die "cnt_sim smoke run failed"
  python3 scripts/check_regression.py "$tmpdir/smoke.json" || fail=1
fi

# --- leg 6: perf wall -------------------------------------------------------
# Run every test under the `perf` ctest label (golden-ledger identity plus
# small smoke runs of bench_perf_stream_replay and bench_perf_kernels --
# docs/performance.md), then gate the BENCH_*.json files they drop in the
# build tree with check_regression.py. The accesses/sec floor is
# deliberately conservative (~50x below a typical release-build run) so it
# only catches order-of-magnitude regressions, not machine-load noise.
replay_bin="$build_dir/bench/bench_perf_stream_replay"
[ -x "$replay_bin" ] || die "bench_perf_stream_replay binary not found: $replay_bin (build the default preset first)"
say "[6/8] ctest -L perf (+ check_regression.py --min-aps 20000)"
if ctest --test-dir "$build_dir" -L perf --output-on-failure >/dev/null 2>&1; then
  python3 scripts/check_regression.py "$build_dir/results/BENCH_stream_replay.json" --min-aps 20000 || fail=1
  python3 scripts/check_regression.py "$build_dir/results/BENCH_kernels.json" --min-aps 20000 || fail=1
else
  echo "check_all: ctest -L perf failed" >&2
  fail=1
fi

# --- leg 7: crash-consistency wall ------------------------------------------
# Kill-point torture sweep over every registered failpoint site
# (docs/crash_consistency.md): SIGKILL / ENOSPC / short-write at seeded
# byte positions, then verify every artifact is absent, byte-identical,
# or refused -- and that --resume restores sweep journals exactly. Three
# seeds vary the kill index per site; the whole sweep is sub-second.
crash_bin="$build_dir/tools/cnt-crash/cnt-crash"
[ -x "$crash_bin" ] || die "cnt-crash binary not found: $crash_bin (build the default preset first)"
say "[7/8] cnt-crash --seeds 3"
"$crash_bin" --out "$build_dir/crash_wall_sweep" --seeds 3 || fail=1

# --- leg 8: hung-work chaos wall --------------------------------------------
# Seeded chaos schedules over a real sweep (docs/robustness.md): delays,
# transient errors, torn journal writes, watchdog-cancelled hangs and
# SIGINT storms, asserting no deadlock, a loadable-or-refused journal,
# exact quarantine reporting and byte-identical --resume recovery.
chaos_bin="$build_dir/tools/cnt-chaos/cnt-chaos"
[ -x "$chaos_bin" ] || die "cnt-chaos binary not found: $chaos_bin (build the default preset first)"
say "[8/8] cnt-chaos --seeds 3"
"$chaos_bin" --out "$build_dir/chaos_wall_sweep" --seeds 3 || fail=1

if [ "$fail" -ne 0 ]; then
  echo "check_all: FAILED" >&2
  exit 1
fi
say "OK (docs, lint, lint-json/audit/DAG, fuzz, regression, perf, crash wall, chaos wall all green)"
