#!/usr/bin/env python3
"""Plot the benchmark harness's CSV outputs.

Usage:
    python3 scripts/plot_results.py [results_dir] [out_dir]

Reads every known CSV in `results_dir` (default ./results, as written by the
bench binaries) and renders figures. With matplotlib installed it writes
PNGs into `out_dir` (default results/plots); otherwise it prints compact
ASCII bar charts so the repository stays dependency-free.
"""

import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def ascii_bars(title, labels, values, unit="%"):
    print(f"\n{title}")
    print("-" * len(title))
    if not values:
        print("  (no data)")
        return
    peak = max(abs(v) for v in values) or 1.0
    width = 46
    for label, v in zip(labels, values):
        bar = "#" * int(abs(v) / peak * width)
        sign = "-" if v < 0 else " "
        print(f"  {label:<16} {sign}{bar} {v:.1f}{unit}")


def try_matplotlib():
    try:
        import matplotlib  # noqa: F401

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt  # noqa: F401

        return plt
    except Exception:
        return None


PLOTS = []


def plot(filename):
    def register(fn):
        PLOTS.append((filename, fn))
        return fn

    return register


@plot("fig_dynamic_energy.csv")
def plot_dynamic(rows, plt, out):
    labels = [r["workload"] for r in rows]
    savings = [100 * float(r["saving"]) for r in rows]
    if plt is None:
        ascii_bars("E1: CNT-Cache saving per workload", labels, savings)
        return
    fig, ax = plt.subplots(figsize=(8, 4))
    ax.bar(labels, savings)
    ax.axhline(22.2, ls="--", c="gray", label="paper mean 22.2%")
    ax.set_ylabel("dynamic energy saving [%]")
    ax.set_title("E1: CNT-Cache vs baseline CNFET cache")
    ax.tick_params(axis="x", rotation=45)
    ax.legend()
    fig.tight_layout()
    fig.savefig(os.path.join(out, "fig_dynamic_energy.png"), dpi=150)


@plot("fig_window_sweep.csv")
def plot_window(rows, plt, out):
    w = [int(r["window"]) for r in rows]
    s = [100 * float(r["mean_saving"]) for r in rows]
    if plt is None:
        ascii_bars("E2: saving vs window W", [f"W={x}" for x in w], s)
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(w, s, marker="o")
    ax.set_xlabel("window W")
    ax.set_ylabel("mean saving [%]")
    ax.set_title("E2: prediction-window sweep")
    fig.tight_layout()
    fig.savefig(os.path.join(out, "fig_window_sweep.png"), dpi=150)


@plot("fig_partition_sweep.csv")
def plot_partitions(rows, plt, out):
    k = [int(r["partitions"]) for r in rows]
    s = [100 * float(r["mean_saving"]) for r in rows]
    if plt is None:
        ascii_bars("E3: saving vs partitions K", [f"K={x}" for x in k], s)
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(k, s, marker="s")
    ax.set_xscale("log", base=2)
    ax.set_xlabel("partitions K")
    ax.set_ylabel("mean saving [%]")
    ax.set_title("E3: encoding granularity")
    fig.tight_layout()
    fig.savefig(os.path.join(out, "fig_partition_sweep.png"), dpi=150)


@plot("fig_density_sweep.csv")
def plot_density(rows, plt, out):
    series = {}
    for r in rows:
        series.setdefault(float(r["write_fraction"]), []).append(
            (float(r["density"]), 100 * float(r["cnt_saving"]))
        )
    if plt is None:
        for wf, pts in sorted(series.items()):
            ascii_bars(
                f"M1: saving vs density (writes={int(wf * 100)}%)",
                [f"d={d:.2f}" for d, _ in pts],
                [s for _, s in pts],
            )
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    for wf, pts in sorted(series.items()):
        pts.sort()
        ax.plot([d for d, _ in pts], [s for _, s in pts], marker="o",
                label=f"writes {int(wf * 100)}%")
    ax.axhline(0, c="gray", lw=0.5)
    ax.set_xlabel("bit-1 density")
    ax.set_ylabel("saving [%]")
    ax.set_title("M1: mechanism chart")
    ax.legend()
    fig.tight_layout()
    fig.savefig(os.path.join(out, "fig_density_sweep.png"), dpi=150)


@plot("fig_asymmetry_sweep.csv")
def plot_asymmetry(rows, plt, out):
    x = [float(r["asymmetry"]) for r in rows]
    s = [100 * float(r["mean_saving"]) for r in rows]
    if plt is None:
        ascii_bars("M2: saving vs cell asymmetry", [f"x={v}" for v in x], s)
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(x, s, marker="d")
    ax.axhline(0, c="gray", lw=0.5)
    ax.set_xlabel("asymmetry scale (1.0 = reconstruction)")
    ax.set_ylabel("mean saving [%]")
    ax.set_title("M2: cell-asymmetry sensitivity")
    fig.tight_layout()
    fig.savefig(os.path.join(out, "fig_asymmetry_sweep.png"), dpi=150)


def main():
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else os.path.join(
        results_dir, "plots")
    plt = try_matplotlib()
    if plt is not None:
        os.makedirs(out_dir, exist_ok=True)

    plotted = 0
    for filename, fn in PLOTS:
        path = os.path.join(results_dir, filename)
        if not os.path.exists(path):
            print(f"skip: {path} (run the matching bench binary first)")
            continue
        fn(read_csv(path), plt, out_dir)
        plotted += 1

    if plt is not None and plotted:
        print(f"wrote {plotted} figures to {out_dir}")
    elif plotted == 0:
        print("nothing to plot; run the bench binaries first")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
