#!/usr/bin/env bash
# clang-tidy leg of the static-analysis wall (ctest name: clang_tidy,
# label: lint). Runs the curated .clang-tidy checks over src/ using the
# compile_commands.json of the given build dir. Degrades to a ctest SKIP
# (exit 77) when clang-tidy is not installed, so `ctest -L lint` stays
# green on toolchains without it.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
set -u

cd "$(dirname "$0")/.." || exit 1
build_dir=${1:-build}

# A missing compile database is a misconfigured build, not a missing
# optional tool: check it FIRST and hard-fail, so a box without
# clang-tidy still surfaces the configuration bug instead of SKIPping
# past it.
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing" \
       "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 1
fi
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found -- SKIP"
  exit 77
fi

fail=0
# Translation units only; headers are covered through their includers via
# the HeaderFilterRegex in .clang-tidy.
while IFS= read -r tu; do
  echo "tidy: $tu"
  clang-tidy --quiet -p "$build_dir" "$tu" || fail=1
done < <(find src tools -name '*.cpp' | sort)

if [ "$fail" -ne 0 ]; then
  echo "run_clang_tidy: FAILED" >&2
  exit 1
fi
echo "run_clang_tidy: OK"
